// Compile-time Kernel concept for the partition-centric engines.
//
// A kernel packages everything algorithm-specific about one
// scatter-gather computation so the engines (PcpmEngine, VprEngine,
// PolymerEngine) can stay algorithm-agnostic:
//
//   Message  POD payload written into the PcpmBins value stream (one
//            per source vertex per destination partition). The bin
//            format itself is payload-agnostic: the 16-bit compact /
//            32-bit wide destination encodings only carry the
//            new-message flag + destination id, never the payload.
//   Value    per-vertex result type (extract() copies it out).
//   Options  kernel-specific knobs (damping, seeds, source vertex).
//   State    per-vertex attribute arrays, arena-allocated by
//            make_state() through the backend, plus run-scoped scalars
//            set by begin_run().
//
// Hot-path hooks (all static, templated on the backend's Mem so the
// simulated backend keeps its accounting seam):
//
//   scatter_ctx/gather_ctx   hoisted-cursor PODs built once per thread
//                            per phase — the generic inner loops touch
//                            only these, so each kernel inlines to the
//                            same code a hand-written loop would.
//   scatter(ctx, mem, u)     produce vertex u's Message.
//   gather(ctx, mem, d, m)   fold message m into destination d;
//                            returns whether d's value changed (drives
//                            the active-partition frontier).
//   apply/apply_tracked      per-partition epilogue after the gather
//                            drain (kHasApply kernels only; the
//                            tracked form returns this range's L1
//                            delta for tolerance-based convergence).
//
// Frontier semantics (kUsesFrontier): the engine keeps two dense
// per-partition byte maps (active / next_active). Scatter clears
// next_active[p] and skips the whole source stream of an inactive
// partition; gather skips pairs whose *source* partition is inactive
// (their inbox slice is stale) and marks the destination partition
// next-active when any of its vertices changed. The run stops when a
// round leaves no partition active. Monotone gathers (min) make the
// skipped stale slices harmless: re-applying an already-applied value
// is a no-op.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/prefetch.hpp"
#include "common/types.hpp"
#include "engines/backend.hpp"
#include "graph/csr.hpp"

namespace hipa::engine {

// ---- per-kernel option structs (one namespace, one style) -----------------

/// PageRank: damping only (iterations/tolerance live in RunOptions).
struct PrOptions {
  rank_t damping = 0.85f;
};

/// Personalized PageRank: restart mass is split uniformly over the
/// seed set instead of all vertices. An empty seed set degenerates to
/// a uniform restart vector (plain PageRank up to rounding).
struct PprOptions {
  rank_t damping = 0.85f;
  std::vector<vid_t> seeds;
};

/// BFS from `source`; rounds are levels. max_rounds is a safety cap —
/// the frontier quiescing is the real stop condition.
struct BfsOptions {
  vid_t source = 0;
  unsigned max_rounds = 100000;
};

/// WCC by min-label propagation (graph must be symmetrized for *weak*
/// connectivity — algo::wcc does that).
struct WccOptions {
  unsigned max_rounds = 100000;
};

/// Single-source shortest paths with source-determined edge weights
/// w(u) (the bin format carries one message per (source, destination
/// partition), so weights must be a function of the source vertex;
/// see DESIGN.md §3.11).
struct SsspOptions {
  vid_t source = 0;
  unsigned max_rounds = 100000;
};

/// Typed result of engine::run<K> / PcpmEngine::run<K>.
template <class K>
struct KernelResult {
  RunReport report;
  std::vector<typename K::Value> values;
};

// ---- PageRank --------------------------------------------------------------

/// The paper's kernel. The hooks below inline to exactly the
/// pre-redesign hand-written loops (same loads/stores, same order,
/// same prefetches), so ranks are bitwise identical to the old
/// PageRank-only engine.
struct PageRankKernel {
  using Message = rank_t;
  using Value = rank_t;
  using Options = PrOptions;
  static constexpr bool kUsesFrontier = false;
  static constexpr bool kHasApply = true;
  static constexpr const char* kName = "pagerank";

  struct State {
    AlignedBuffer<rank_t> rank;
    AlignedBuffer<rank_t> rank_scaled;
    AlignedBuffer<rank_t> acc;
    AlignedBuffer<rank_t> inv_deg;  ///< 1/out-degree, 0 for sinks
    rank_t base = 0.0f;
    rank_t damping = 0.85f;
    rank_t r0 = 0.0f;
  };

  template <class Backend>
  static State make_state(const graph::Graph& g, Backend& backend) {
    const vid_t n = g.num_vertices();
    State s;
    // Carved page-aligned from the arena's first-touch region — fresh,
    // never-touched pages, deliberately NOT eagerly zeroed: the first
    // write happens in init() from the pinned owner of each slice (the
    // classic first-touch placement). inv_deg is a cold-path heap
    // allocation by design (cache-line aligned, below the
    // page-alignment threshold the arena hook polices).
    s.rank = backend.template alloc_pages<rank_t>(n);
    s.rank_scaled = backend.template alloc_pages<rank_t>(n);
    s.acc = backend.template alloc_pages<rank_t>(n);
    s.inv_deg = graph::inverse_degrees<rank_t>(g.out);
    return s;
  }

  /// Vertex-indexed arrays for NUMA slice registration + the placement
  /// audit (`audited` selects the arrays the auditor names).
  template <class F>
  static void for_each_vertex_array(State& s, F&& f) {
    f("rank", s.rank.data(), sizeof(rank_t), true);
    f("rank_scaled", s.rank_scaled.data(), sizeof(rank_t), true);
    f("acc", s.acc.data(), sizeof(rank_t), true);
    f("inv_deg", s.inv_deg.data(), sizeof(rank_t), false);
  }

  static void begin_run(State& s, const Options& o, const graph::Graph& g) {
    const vid_t n = g.num_vertices();
    s.base =
        static_cast<rank_t>((1.0 - o.damping) / static_cast<double>(n));
    s.damping = o.damping;
    s.r0 = static_cast<rank_t>(1.0 / static_cast<double>(n));
  }

  static unsigned max_iterations(const Options&, const RunOptions& ro) {
    return ro.iterations;
  }

  template <class Mem>
  static void init(State& s, Mem& mem, VertexRange r) {
    mem.stream_read(s.inv_deg.data() + r.begin, r.size());
    mem.stream_write(s.rank.data() + r.begin, r.size());
    mem.stream_write(s.rank_scaled.data() + r.begin, r.size());
    mem.stream_write(s.acc.data() + r.begin, r.size());
    rank_t* __restrict rank = s.rank.data();
    rank_t* __restrict scaled = s.rank_scaled.data();
    rank_t* __restrict acc = s.acc.data();
    const rank_t* __restrict inv = s.inv_deg.data();
    const rank_t r0 = s.r0;
    for (vid_t v = r.begin; v < r.end; ++v) {
      rank[v] = r0;
      // Branchless sink handling: inv is exactly 0 for sinks.
      scaled[v] = r0 * inv[v];
      acc[v] = 0.0f;
    }
    mem.work(r.size());
  }

  struct ScatterCtx {
    const rank_t* __restrict rs;
  };
  static ScatterCtx scatter_ctx(const State& s) {
    return {s.rank_scaled.data()};
  }
  static void scatter_prefetch(const ScatterCtx& c, vid_t u) {
    prefetch_read(c.rs + u);
  }
  template <class Mem>
  static Message scatter(const ScatterCtx& c, Mem& mem, vid_t u) {
    return mem.load(c.rs + u);
  }

  struct GatherCtx {
    rank_t* __restrict acc;
  };
  static GatherCtx gather_ctx(State& s) { return {s.acc.data()}; }
  static void gather_prefetch(const GatherCtx& c, vid_t d) {
    prefetch_write(c.acc + d);
  }
  template <class Mem>
  static bool gather(const GatherCtx& c, Mem& mem, vid_t d, Message m) {
    // Random update, resident in the destination partition's cache
    // slice.
    mem.store(c.acc + d, c.acc[d] + m);
    return false;
  }

  template <class Mem>
  static void apply(State& s, Mem& mem, VertexRange r) {
    // Finish PageRank for this partition's vertices. All four arrays
    // stream; the body is branchless (sinks have inv == 0) and
    // autovectorizable.
    mem.stream_read(s.acc.data() + r.begin, r.size());
    mem.stream_read(s.inv_deg.data() + r.begin, r.size());
    mem.stream_write(s.rank.data() + r.begin, r.size());
    mem.stream_write(s.rank_scaled.data() + r.begin, r.size());
    rank_t* __restrict rank = s.rank.data();
    rank_t* __restrict scaled = s.rank_scaled.data();
    rank_t* __restrict acc = s.acc.data();
    const rank_t* __restrict inv = s.inv_deg.data();
    const rank_t base = s.base;
    const rank_t damping = s.damping;
    for (vid_t v = r.begin; v < r.end; ++v) {
      const rank_t new_rank = base + damping * acc[v];
      rank[v] = new_rank;
      scaled[v] = new_rank * inv[v];
      acc[v] = 0.0f;
    }
    mem.work(3 * r.size());
  }

  template <class Mem>
  static double apply_tracked(State& s, Mem& mem, VertexRange r) {
    mem.stream_read(s.acc.data() + r.begin, r.size());
    mem.stream_read(s.inv_deg.data() + r.begin, r.size());
    mem.stream_write(s.rank.data() + r.begin, r.size());
    mem.stream_write(s.rank_scaled.data() + r.begin, r.size());
    rank_t* __restrict rank = s.rank.data();
    rank_t* __restrict scaled = s.rank_scaled.data();
    rank_t* __restrict acc = s.acc.data();
    const rank_t* __restrict inv = s.inv_deg.data();
    const rank_t base = s.base;
    const rank_t damping = s.damping;
    double l1 = 0.0;
    for (vid_t v = r.begin; v < r.end; ++v) {
      const rank_t new_rank = base + damping * acc[v];
      l1 += std::fabs(static_cast<double>(new_rank) -
                      static_cast<double>(rank[v]));
      rank[v] = new_rank;
      scaled[v] = new_rank * inv[v];
      acc[v] = 0.0f;
    }
    mem.work(3 * r.size());
    return l1;
  }

  static void extract(const State& s, std::vector<Value>& out) {
    out.assign(s.rank.begin(), s.rank.end());
  }

  /// Reorder support (no vertex-id-valued options or values).
  static void remap_options(Options&, std::span<const vid_t>) {}
  static void remap_values(std::vector<Value>&, std::span<const vid_t>) {}

  /// Pull-mode algebra for the vertex-centric engines (v-PR, Polymer):
  /// contrib is the value a vertex advertises over its out-edges, the
  /// fold is merge() starting from identity(), and apply() turns the
  /// fold result into the vertex's next value. TV is the engine's
  /// value representation (rank_t for v-PR, double for Polymer's
  /// Ligra-fidelity internals); A is the fold accumulator type.
  struct Pull {
    using Acc = double;           ///< Polymer fold/accumulator element
    using PolymerValue = double;  ///< Polymer per-vertex value type
    static constexpr bool kNeedsInv = true;
    static constexpr bool kAddCombine = true;  ///< sum (vs min) fold
    template <class TV>
    static Message contrib(TV x, TV inv, vid_t) {
      return static_cast<Message>(x * inv);
    }
    template <class A>
    static constexpr A identity() {
      return A{0};
    }
    template <class A, class M>
    static A merge(A a, M m) {
      return a + m;
    }
    template <class TV, class A>
    static TV apply(TV, A folded, TV bias, rank_t damping) {
      return bias + static_cast<TV>(damping) * static_cast<TV>(folded);
    }
    /// Fill the engine-side init values and per-vertex bias (the
    /// constant term of apply); returns the damping scalar.
    template <class TV>
    static rank_t setup(const Options& o, const graph::Graph& g,
                        std::vector<TV>& init, std::vector<TV>& bias) {
      const vid_t n = g.num_vertices();
      const auto r0 = static_cast<rank_t>(1.0 / static_cast<double>(n));
      const auto base = static_cast<rank_t>((1.0 - o.damping) /
                                            static_cast<double>(n));
      init.assign(n, static_cast<TV>(r0));
      bias.assign(n, static_cast<TV>(base));
      return o.damping;
    }
  };
};

// ---- Personalized PageRank -------------------------------------------------

/// Power iteration of r = (1-d)*restart + d*A^T(r/deg) where the
/// restart vector concentrates mass on the seed set. Shares PageRank's
/// scatter/gather; only init and apply read the per-vertex restart
/// array instead of the uniform 1/n.
struct PprKernel {
  using Message = rank_t;
  using Value = rank_t;
  using Options = PprOptions;
  static constexpr bool kUsesFrontier = false;
  static constexpr bool kHasApply = true;
  static constexpr const char* kName = "ppr";

  struct State {
    AlignedBuffer<rank_t> rank;
    AlignedBuffer<rank_t> rank_scaled;
    AlignedBuffer<rank_t> acc;
    AlignedBuffer<rank_t> inv_deg;
    AlignedBuffer<rank_t> restart;  ///< seed-restart vector, sums to 1
    rank_t damping = 0.85f;
    rank_t one_minus_d = 0.15f;
  };

  template <class Backend>
  static State make_state(const graph::Graph& g, Backend& backend) {
    const vid_t n = g.num_vertices();
    State s;
    s.rank = backend.template alloc_pages<rank_t>(n);
    s.rank_scaled = backend.template alloc_pages<rank_t>(n);
    s.acc = backend.template alloc_pages<rank_t>(n);
    s.inv_deg = graph::inverse_degrees<rank_t>(g.out);
    s.restart = backend.template alloc_pages<rank_t>(n);
    s.restart.fill_zero();
    return s;
  }

  template <class F>
  static void for_each_vertex_array(State& s, F&& f) {
    f("rank", s.rank.data(), sizeof(rank_t), true);
    f("rank_scaled", s.rank_scaled.data(), sizeof(rank_t), true);
    f("acc", s.acc.data(), sizeof(rank_t), true);
    f("inv_deg", s.inv_deg.data(), sizeof(rank_t), false);
    f("restart", s.restart.data(), sizeof(rank_t), false);
  }

  static void begin_run(State& s, const Options& o, const graph::Graph& g) {
    const vid_t n = g.num_vertices();
    s.damping = o.damping;
    s.one_minus_d = 1.0f - o.damping;
    rank_t* rst = s.restart.data();
    std::fill(rst, rst + n, 0.0f);
    if (o.seeds.empty()) {
      const auto u = static_cast<rank_t>(1.0 / static_cast<double>(n));
      std::fill(rst, rst + n, u);
      return;
    }
    const auto w = static_cast<rank_t>(
        1.0 / static_cast<double>(o.seeds.size()));
    for (vid_t v : o.seeds) {
      HIPA_CHECK(v < n, "PPR seed out of range");
      rst[v] += w;
    }
  }

  static unsigned max_iterations(const Options&, const RunOptions& ro) {
    return ro.iterations;
  }

  template <class Mem>
  static void init(State& s, Mem& mem, VertexRange r) {
    mem.stream_read(s.restart.data() + r.begin, r.size());
    mem.stream_read(s.inv_deg.data() + r.begin, r.size());
    mem.stream_write(s.rank.data() + r.begin, r.size());
    mem.stream_write(s.rank_scaled.data() + r.begin, r.size());
    mem.stream_write(s.acc.data() + r.begin, r.size());
    rank_t* __restrict rank = s.rank.data();
    rank_t* __restrict scaled = s.rank_scaled.data();
    rank_t* __restrict acc = s.acc.data();
    const rank_t* __restrict inv = s.inv_deg.data();
    const rank_t* __restrict rst = s.restart.data();
    for (vid_t v = r.begin; v < r.end; ++v) {
      rank[v] = rst[v];
      scaled[v] = rst[v] * inv[v];
      acc[v] = 0.0f;
    }
    mem.work(r.size());
  }

  using ScatterCtx = PageRankKernel::ScatterCtx;
  static ScatterCtx scatter_ctx(const State& s) {
    return {s.rank_scaled.data()};
  }
  static void scatter_prefetch(const ScatterCtx& c, vid_t u) {
    prefetch_read(c.rs + u);
  }
  template <class Mem>
  static Message scatter(const ScatterCtx& c, Mem& mem, vid_t u) {
    return mem.load(c.rs + u);
  }

  using GatherCtx = PageRankKernel::GatherCtx;
  static GatherCtx gather_ctx(State& s) { return {s.acc.data()}; }
  static void gather_prefetch(const GatherCtx& c, vid_t d) {
    prefetch_write(c.acc + d);
  }
  template <class Mem>
  static bool gather(const GatherCtx& c, Mem& mem, vid_t d, Message m) {
    mem.store(c.acc + d, c.acc[d] + m);
    return false;
  }

  template <class Mem>
  static void apply(State& s, Mem& mem, VertexRange r) {
    mem.stream_read(s.acc.data() + r.begin, r.size());
    mem.stream_read(s.inv_deg.data() + r.begin, r.size());
    mem.stream_read(s.restart.data() + r.begin, r.size());
    mem.stream_write(s.rank.data() + r.begin, r.size());
    mem.stream_write(s.rank_scaled.data() + r.begin, r.size());
    rank_t* __restrict rank = s.rank.data();
    rank_t* __restrict scaled = s.rank_scaled.data();
    rank_t* __restrict acc = s.acc.data();
    const rank_t* __restrict inv = s.inv_deg.data();
    const rank_t* __restrict rst = s.restart.data();
    const rank_t omd = s.one_minus_d;
    const rank_t damping = s.damping;
    for (vid_t v = r.begin; v < r.end; ++v) {
      const rank_t new_rank = omd * rst[v] + damping * acc[v];
      rank[v] = new_rank;
      scaled[v] = new_rank * inv[v];
      acc[v] = 0.0f;
    }
    mem.work(4 * r.size());
  }

  template <class Mem>
  static double apply_tracked(State& s, Mem& mem, VertexRange r) {
    mem.stream_read(s.acc.data() + r.begin, r.size());
    mem.stream_read(s.inv_deg.data() + r.begin, r.size());
    mem.stream_read(s.restart.data() + r.begin, r.size());
    mem.stream_write(s.rank.data() + r.begin, r.size());
    mem.stream_write(s.rank_scaled.data() + r.begin, r.size());
    rank_t* __restrict rank = s.rank.data();
    rank_t* __restrict scaled = s.rank_scaled.data();
    rank_t* __restrict acc = s.acc.data();
    const rank_t* __restrict inv = s.inv_deg.data();
    const rank_t* __restrict rst = s.restart.data();
    const rank_t omd = s.one_minus_d;
    const rank_t damping = s.damping;
    double l1 = 0.0;
    for (vid_t v = r.begin; v < r.end; ++v) {
      const rank_t new_rank = omd * rst[v] + damping * acc[v];
      l1 += std::fabs(static_cast<double>(new_rank) -
                      static_cast<double>(rank[v]));
      rank[v] = new_rank;
      scaled[v] = new_rank * inv[v];
      acc[v] = 0.0f;
    }
    mem.work(4 * r.size());
    return l1;
  }

  static void extract(const State& s, std::vector<Value>& out) {
    out.assign(s.rank.begin(), s.rank.end());
  }

  /// Reorder support: seeds move with the permutation (perm[old] = new);
  /// rank values are positional only.
  static void remap_options(Options& o, std::span<const vid_t> perm) {
    for (vid_t& s : o.seeds) s = perm[s];
  }
  static void remap_values(std::vector<Value>&, std::span<const vid_t>) {}

  /// Pull-mode algebra: PageRank's sum/apply with the restart vector
  /// folded into the per-vertex bias ((1-d) * restart[v]).
  struct Pull {
    using Acc = double;
    using PolymerValue = double;
    static constexpr bool kNeedsInv = true;
    static constexpr bool kAddCombine = true;
    template <class TV>
    static Message contrib(TV x, TV inv, vid_t) {
      return static_cast<Message>(x * inv);
    }
    template <class A>
    static constexpr A identity() {
      return A{0};
    }
    template <class A, class M>
    static A merge(A a, M m) {
      return a + m;
    }
    template <class TV, class A>
    static TV apply(TV, A folded, TV bias, rank_t damping) {
      return bias + static_cast<TV>(damping) * static_cast<TV>(folded);
    }
    template <class TV>
    static rank_t setup(const Options& o, const graph::Graph& g,
                        std::vector<TV>& init, std::vector<TV>& bias) {
      const vid_t n = g.num_vertices();
      const rank_t omd = 1.0f - o.damping;
      std::vector<rank_t> rst(n, 0.0f);
      if (o.seeds.empty()) {
        const auto u = static_cast<rank_t>(1.0 / static_cast<double>(n));
        std::fill(rst.begin(), rst.end(), u);
      } else {
        const auto w = static_cast<rank_t>(
            1.0 / static_cast<double>(o.seeds.size()));
        for (vid_t v : o.seeds) {
          HIPA_CHECK(v < n, "PPR seed out of range");
          rst[v] += w;
        }
      }
      init.resize(n);
      bias.resize(n);
      for (vid_t v = 0; v < n; ++v) {
        init[v] = static_cast<TV>(rst[v]);
        bias[v] = static_cast<TV>(omd * rst[v]);
      }
      return o.damping;
    }
  };
};

// ---- BFS -------------------------------------------------------------------

/// Level-synchronous BFS: message = dist(u) + 1, gather = monotone
/// min. The frontier makes it work-efficient: only partitions whose
/// vertices changed last round scatter, and quiescence stops the run.
struct BfsKernel {
  using Message = std::uint32_t;
  using Value = std::uint32_t;
  using Options = BfsOptions;
  static constexpr bool kUsesFrontier = true;
  static constexpr bool kHasApply = false;
  static constexpr const char* kName = "bfs";
  static constexpr std::uint32_t kUnreached = 0xffffffffu;

  struct State {
    AlignedBuffer<std::uint32_t> dist;
    vid_t source = 0;
  };

  template <class Backend>
  static State make_state(const graph::Graph& g, Backend& backend) {
    State s;
    s.dist = backend.template alloc_pages<std::uint32_t>(g.num_vertices());
    return s;
  }

  template <class F>
  static void for_each_vertex_array(State& s, F&& f) {
    f("dist", s.dist.data(), sizeof(std::uint32_t), true);
  }

  static void begin_run(State& s, const Options& o, const graph::Graph& g) {
    HIPA_CHECK(o.source < g.num_vertices(), "BFS source out of range");
    s.source = o.source;
  }

  static unsigned max_iterations(const Options& o, const RunOptions&) {
    return o.max_rounds;
  }

  template <class Mem>
  static void init(State& s, Mem& mem, VertexRange r) {
    mem.stream_write(s.dist.data() + r.begin, r.size());
    std::uint32_t* __restrict dist = s.dist.data();
    for (vid_t v = r.begin; v < r.end; ++v) dist[v] = kUnreached;
    if (s.source >= r.begin && s.source < r.end) dist[s.source] = 0;
    mem.work(r.size());
  }

  static bool initially_active(const State& s, VertexRange r) {
    return s.source >= r.begin && s.source < r.end;
  }

  struct ScatterCtx {
    const std::uint32_t* __restrict dist;
  };
  static ScatterCtx scatter_ctx(const State& s) { return {s.dist.data()}; }
  static void scatter_prefetch(const ScatterCtx& c, vid_t u) {
    prefetch_read(c.dist + u);
  }
  template <class Mem>
  static Message scatter(const ScatterCtx& c, Mem& mem, vid_t u) {
    // Saturating +1: unreached sources advertise kUnreached, which can
    // never win a min against any real distance.
    const std::uint32_t du = mem.load(c.dist + u);
    return du == kUnreached ? kUnreached : du + 1;
  }

  struct GatherCtx {
    std::uint32_t* __restrict dist;
  };
  static GatherCtx gather_ctx(State& s) { return {s.dist.data()}; }
  static void gather_prefetch(const GatherCtx& c, vid_t d) {
    prefetch_write(c.dist + d);
  }
  template <class Mem>
  static bool gather(const GatherCtx& c, Mem& mem, vid_t d, Message m) {
    if (m < c.dist[d]) {
      mem.store(c.dist + d, m);
      return true;
    }
    return false;
  }

  static void extract(const State& s, std::vector<Value>& out) {
    out.assign(s.dist.begin(), s.dist.end());
  }

  /// Reorder support: the source moves with the permutation; distances
  /// are positional only.
  static void remap_options(Options& o, std::span<const vid_t> perm) {
    o.source = perm[o.source];
  }
  static void remap_values(std::vector<Value>&, std::span<const vid_t>) {}

  /// Pull-mode algebra: v pulls min(dist[u] + 1) over in-neighbors u.
  struct Pull {
    using Acc = Message;
    using PolymerValue = Value;
    static constexpr bool kNeedsInv = false;
    static constexpr bool kAddCombine = false;
    template <class TV>
    static Message contrib(TV x, TV, vid_t) {
      return x == kUnreached ? kUnreached : x + 1;
    }
    template <class A>
    static constexpr A identity() {
      return kUnreached;
    }
    template <class A, class M>
    static A merge(A a, M m) {
      return m < a ? static_cast<A>(m) : a;
    }
    template <class TV, class A>
    static TV apply(TV old, A folded, TV, rank_t) {
      const auto f = static_cast<TV>(folded);
      return f < old ? f : old;
    }
    template <class TV>
    static rank_t setup(const Options& o, const graph::Graph& g,
                        std::vector<TV>& init, std::vector<TV>& bias) {
      HIPA_CHECK(o.source < g.num_vertices(), "BFS source out of range");
      init.assign(g.num_vertices(), kUnreached);
      init[o.source] = 0;
      bias.clear();
      return 0.0f;
    }
  };
};

// ---- WCC -------------------------------------------------------------------

/// Weakly-connected components by min-label propagation (labels
/// converge to the smallest vertex id of each component). The graph
/// must be symmetric (every edge in both directions) for the result to
/// be *weak* connectivity — algo::wcc symmetrizes before building the
/// engine. Every partition starts active; a partition goes quiet once
/// none of its labels changed in a round.
struct WccKernel {
  using Message = vid_t;
  using Value = vid_t;
  using Options = WccOptions;
  static constexpr bool kUsesFrontier = true;
  static constexpr bool kHasApply = false;
  static constexpr const char* kName = "wcc";

  struct State {
    AlignedBuffer<vid_t> label;
  };

  template <class Backend>
  static State make_state(const graph::Graph& g, Backend& backend) {
    State s;
    s.label = backend.template alloc_pages<vid_t>(g.num_vertices());
    return s;
  }

  template <class F>
  static void for_each_vertex_array(State& s, F&& f) {
    f("label", s.label.data(), sizeof(vid_t), true);
  }

  static void begin_run(State&, const Options&, const graph::Graph&) {}

  static unsigned max_iterations(const Options& o, const RunOptions&) {
    return o.max_rounds;
  }

  template <class Mem>
  static void init(State& s, Mem& mem, VertexRange r) {
    mem.stream_write(s.label.data() + r.begin, r.size());
    vid_t* __restrict label = s.label.data();
    for (vid_t v = r.begin; v < r.end; ++v) label[v] = v;
    mem.work(r.size());
  }

  static bool initially_active(const State&, VertexRange) { return true; }

  struct ScatterCtx {
    const vid_t* __restrict label;
  };
  static ScatterCtx scatter_ctx(const State& s) { return {s.label.data()}; }
  static void scatter_prefetch(const ScatterCtx& c, vid_t u) {
    prefetch_read(c.label + u);
  }
  template <class Mem>
  static Message scatter(const ScatterCtx& c, Mem& mem, vid_t u) {
    return mem.load(c.label + u);
  }

  struct GatherCtx {
    vid_t* __restrict label;
  };
  static GatherCtx gather_ctx(State& s) { return {s.label.data()}; }
  static void gather_prefetch(const GatherCtx& c, vid_t d) {
    prefetch_write(c.label + d);
  }
  template <class Mem>
  static bool gather(const GatherCtx& c, Mem& mem, vid_t d, Message m) {
    if (m < c.label[d]) {
      mem.store(c.label + d, m);
      return true;
    }
    return false;
  }

  static void extract(const State& s, std::vector<Value>& out) {
    out.assign(s.label.begin(), s.label.end());
  }

  /// Reorder support: labels are vertex *ids*, so after the positional
  /// unpermute they must be mapped back through old_of_new[new] = old.
  /// The result is a consistent representative per component (the
  /// original id whose permuted id is smallest), not necessarily the
  /// minimal original id.
  static void remap_options(Options&, std::span<const vid_t>) {}
  static void remap_values(std::vector<Value>& labels,
                           std::span<const vid_t> old_of_new) {
    for (Value& l : labels) l = old_of_new[l];
  }

  /// Pull-mode algebra: v pulls the min label of its in-neighbors
  /// (equal to its out-neighbors on the symmetrized WCC input).
  struct Pull {
    using Acc = Message;
    using PolymerValue = Value;
    static constexpr bool kNeedsInv = false;
    static constexpr bool kAddCombine = false;
    template <class TV>
    static Message contrib(TV x, TV, vid_t) {
      return x;
    }
    template <class A>
    static constexpr A identity() {
      return std::numeric_limits<A>::max();
    }
    template <class A, class M>
    static A merge(A a, M m) {
      return m < a ? static_cast<A>(m) : a;
    }
    template <class TV, class A>
    static TV apply(TV old, A folded, TV, rank_t) {
      const auto f = static_cast<TV>(folded);
      return f < old ? f : old;
    }
    template <class TV>
    static rank_t setup(const Options&, const graph::Graph& g,
                        std::vector<TV>& init, std::vector<TV>& bias) {
      init.resize(g.num_vertices());
      for (vid_t v = 0; v < g.num_vertices(); ++v) init[v] = v;
      bias.clear();
      return 0.0f;
    }
  };
};

// ---- SSSP ------------------------------------------------------------------

/// Bellman-Ford-style SSSP with monotone min-gather over float
/// distances. The PCPM bin format fans ONE message per (source vertex,
/// destination partition) across that partition's destinations, so
/// edge weights must be source-determined: w(u) is a fixed function of
/// the source vertex id, applied at scatter (message = dist(u) +
/// w(u)). Min-gather is order-independent, so distances are
/// deterministic across thread counts and encodings.
struct SsspKernel {
  using Message = float;
  using Value = float;
  using Options = SsspOptions;
  static constexpr bool kUsesFrontier = true;
  static constexpr bool kHasApply = false;
  static constexpr const char* kName = "sssp";
  /// Large finite sentinel (not IEEE inf, so the saturating
  /// `dist + w` stays well-defined under any FP mode). Any message
  /// derived from an unreached source compares >= every real distance.
  static constexpr float kUnreached =
      std::numeric_limits<float>::max() * 0.25f;

  /// Deterministic source-determined edge weight in [1, 2.75].
  static float weight(vid_t u) {
    return 1.0f + static_cast<float>(u & 7u) * 0.25f;
  }

  struct State {
    AlignedBuffer<float> dist;
    vid_t source = 0;
  };

  template <class Backend>
  static State make_state(const graph::Graph& g, Backend& backend) {
    State s;
    s.dist = backend.template alloc_pages<float>(g.num_vertices());
    return s;
  }

  template <class F>
  static void for_each_vertex_array(State& s, F&& f) {
    f("dist", s.dist.data(), sizeof(float), true);
  }

  static void begin_run(State& s, const Options& o, const graph::Graph& g) {
    HIPA_CHECK(o.source < g.num_vertices(), "SSSP source out of range");
    s.source = o.source;
  }

  static unsigned max_iterations(const Options& o, const RunOptions&) {
    return o.max_rounds;
  }

  template <class Mem>
  static void init(State& s, Mem& mem, VertexRange r) {
    mem.stream_write(s.dist.data() + r.begin, r.size());
    float* __restrict dist = s.dist.data();
    for (vid_t v = r.begin; v < r.end; ++v) dist[v] = kUnreached;
    if (s.source >= r.begin && s.source < r.end) dist[s.source] = 0.0f;
    mem.work(r.size());
  }

  static bool initially_active(const State& s, VertexRange r) {
    return s.source >= r.begin && s.source < r.end;
  }

  struct ScatterCtx {
    const float* __restrict dist;
  };
  static ScatterCtx scatter_ctx(const State& s) { return {s.dist.data()}; }
  static void scatter_prefetch(const ScatterCtx& c, vid_t u) {
    prefetch_read(c.dist + u);
  }
  template <class Mem>
  static Message scatter(const ScatterCtx& c, Mem& mem, vid_t u) {
    // An unreached source yields kUnreached + w, which still loses
    // every min against a real distance (and ties kUnreached itself,
    // since the addition is absorbed at this magnitude).
    return mem.load(c.dist + u) + weight(u);
  }

  struct GatherCtx {
    float* __restrict dist;
  };
  static GatherCtx gather_ctx(State& s) { return {s.dist.data()}; }
  static void gather_prefetch(const GatherCtx& c, vid_t d) {
    prefetch_write(c.dist + d);
  }
  template <class Mem>
  static bool gather(const GatherCtx& c, Mem& mem, vid_t d, Message m) {
    if (m < c.dist[d]) {
      mem.store(c.dist + d, m);
      return true;
    }
    return false;
  }

  static void extract(const State& s, std::vector<Value>& out) {
    out.assign(s.dist.begin(), s.dist.end());
  }

  /// Reorder support: the source moves with the permutation. NOTE:
  /// w(u) is a function of the vertex *id*, so a reordered run solves
  /// the shortest-path problem under the permuted weight assignment
  /// (see DESIGN.md 3.11).
  static void remap_options(Options& o, std::span<const vid_t> perm) {
    o.source = perm[o.source];
  }
  static void remap_values(std::vector<Value>&, std::span<const vid_t>) {}

  /// Pull-mode algebra: v pulls min(dist[u] + w(u)) over in-neighbors.
  struct Pull {
    using Acc = Message;
    using PolymerValue = Value;
    static constexpr bool kNeedsInv = false;
    static constexpr bool kAddCombine = false;
    template <class TV>
    static Message contrib(TV x, TV, vid_t u) {
      return x + weight(u);
    }
    template <class A>
    static constexpr A identity() {
      return kUnreached;
    }
    template <class A, class M>
    static A merge(A a, M m) {
      return m < a ? static_cast<A>(m) : a;
    }
    template <class TV, class A>
    static TV apply(TV old, A folded, TV, rank_t) {
      const auto f = static_cast<TV>(folded);
      return f < old ? f : old;
    }
    template <class TV>
    static rank_t setup(const Options& o, const graph::Graph& g,
                        std::vector<TV>& init, std::vector<TV>& bias) {
      HIPA_CHECK(o.source < g.num_vertices(), "SSSP source out of range");
      init.assign(g.num_vertices(), kUnreached);
      init[o.source] = 0.0f;
      bias.clear();
      return 0.0f;
    }
  };
};

}  // namespace hipa::engine
