#include "shard/router.hpp"

#include <algorithm>
#include <array>
#include <chrono>

#include "common/error.hpp"
#include "serve/topk_index.hpp"

namespace hipa::shard {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Caps of the allocation-free merge fast path; wider fleets or deeper
/// k fall back to the (allocating) cold merge outside the hot region.
constexpr std::size_t kHotMergeParts = 64;
constexpr std::size_t kHotMergeK = 256;

// shard-hot-path-begin
// The scatter/merge inner loops below run once per routed request on
// every caller thread; scripts/check_allocations.sh lints this region
// for allocation and locking tokens. Index arithmetic and comparator
// calls only.

/// K-way merge of descending (topk_less-sorted) partials into out.
/// `cursors` must hold `parts_count` zeros on entry. Returns entries
/// written (<= k). Identical selection order to serve::merge_top_k:
/// the global answer is bitwise the single-process answer.
std::size_t merge_sorted_partials(
    const std::span<const serve::TopKEntry>* parts, std::size_t parts_count,
    std::uint32_t* cursors, serve::TopKEntry* out, std::size_t k) {
  std::size_t filled = 0;
  while (filled < k) {
    std::size_t best = parts_count;
    for (std::size_t p = 0; p < parts_count; ++p) {
      if (cursors[p] >= parts[p].size()) continue;
      if (best == parts_count ||
          serve::topk_less(parts[p][cursors[p]],
                           parts[best][cursors[best]])) {
        best = p;
      }
    }
    if (best == parts_count) break;
    out[filled] = parts[best][cursors[best]];
    ++cursors[best];
    ++filled;
  }
  return filled;
}
// shard-hot-path-end

}  // namespace

ShardTarget tcp_target(const std::string& host, int port, int metrics_port) {
  ShardTarget t;
  t.name = host + ":" + std::to_string(port);
  t.connect = [host, port] { return connect_tcp(host, port); };
  t.probe_host = host;
  t.probe_port = metrics_port;
  return t;
}

// ---------------------------------------------------------------------------
// Waiter
// ---------------------------------------------------------------------------

void ShardRouter::Waiter::arrive() {
  // Notify UNDER the lock: the waiter destroys this object the moment
  // wait() returns, so touching cv after unlocking races a spurious
  // wakeup straight into a use-after-free.
  std::lock_guard<std::mutex> lock(mutex);
  --remaining;
  if (remaining == 0) cv.notify_all();
}

void ShardRouter::Waiter::wait() {
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [this] { return remaining == 0; });
}

// ---------------------------------------------------------------------------
// Construction / shard map
// ---------------------------------------------------------------------------

ShardRouter::ShardRouter(std::vector<ShardTarget> targets, RouterOptions opt)
    : opt_(opt) {
  HIPA_CHECK(!targets.empty(), "router needs at least one shard target");
  shards_.reserve(targets.size());
  for (ShardTarget& t : targets) {
    auto st = std::make_unique<ShardState>();
    st->target = std::move(t);
    shards_.push_back(std::move(st));
  }

  // Hello every shard to learn the map. The initial connection is kept
  // and handed to the worker so the first query needs no reconnect.
  std::vector<std::unique_ptr<Conn>> conns(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardState& st = *shards_[s];
    std::unique_ptr<Conn> conn = st.target.connect();
    HIPA_CHECK(conn != nullptr,
               "router: cannot connect shard '" << st.target.name << "'");
    HIPA_CHECK(conn->send(encode_hello(Hello{static_cast<std::uint32_t>(s)})),
               "router: hello send failed for '" << st.target.name << "'");
    Frame f;
    HIPA_CHECK(conn->recv(&f), "router: hello reply lost for '"
                                   << st.target.name << "'");
    const std::optional<HelloAck> ack = decode_hello_ack(f);
    HIPA_CHECK(ack.has_value(), "router: malformed hello ack from '"
                                    << st.target.name << "'");
    st.info = *ack;
    st.last_epoch.store(ack->epoch, std::memory_order_relaxed);
    if (!st.target.probe && !st.target.probe_host.empty()) {
      const int mp = st.target.probe_port > 0
                         ? st.target.probe_port
                         : static_cast<int>(ack->metrics_port);
      if (mp > 0) {
        const std::string host = st.target.probe_host;
        st.target.probe = [host, mp] { return poll_health(host, mp, 0.5); };
      }
    }
    conns[s] = std::move(conn);
  }

  // The shard map must tile [0, V) in target order: contiguous,
  // non-overlapping, complete — the distributed analogue of the
  // snapshot store's node slices.
  num_vertices_ = shards_.front()->info.num_vertices_global;
  topk_k_ = shards_.front()->info.topk_k;
  vid_t expect = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const HelloAck& info = shards_[s]->info;
    HIPA_CHECK(info.num_vertices_global == num_vertices_,
               "shard map: '" << shards_[s]->target.name << "' serves "
                              << info.num_vertices_global << " vertices, "
                              << "fleet serves " << num_vertices_);
    HIPA_CHECK(info.range.begin == expect && info.range.end > info.range.begin,
               "shard map: '" << shards_[s]->target.name << "' owns ["
                              << info.range.begin << ", " << info.range.end
                              << "), expected range starting at " << expect);
    expect = info.range.end;
  }
  HIPA_CHECK(expect == num_vertices_,
             "shard map: ranges cover [0, " << expect << ") of "
                                            << num_vertices_ << " vertices");

  initial_conns_ = std::move(conns);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->worker = std::thread([this, s] { worker_loop(s); });
  }
  if (opt_.health_poll_seconds > 0) {
    poll_thread_ = std::thread([this] { poll_loop(); });
  }
}

ShardRouter::~ShardRouter() { stop(); }

void ShardRouter::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(poll_wake_mutex_);
  }
  poll_wake_cv_.notify_all();
  if (poll_thread_.joinable()) poll_thread_.join();
  for (auto& st : shards_) {
    {
      std::lock_guard<std::mutex> lock(st->mutex);
      st->shutdown = true;
    }
    st->cv.notify_all();
  }
  for (auto& st : shards_) {
    if (st->worker.joinable()) st->worker.join();
  }
}

VertexRange ShardRouter::shard_range(std::size_t shard) const {
  return shards_.at(shard)->info.range;
}

ShardHealth ShardRouter::health(std::size_t shard) const {
  return static_cast<ShardHealth>(
      shards_.at(shard)->health.load(std::memory_order_acquire));
}

std::uint64_t ShardRouter::shard_epoch(std::size_t shard) const {
  return shards_.at(shard)->last_epoch.load(std::memory_order_acquire);
}

void ShardRouter::update_target(std::size_t shard, ShardTarget target) {
  ShardState& st = *shards_.at(shard);
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    st.target = std::move(target);
    ++st.target_generation;
  }
  st.cv.notify_all();
}

// shard-hot-path-begin
// Ownership lookup: binary search over the contiguous shard tiling.
std::size_t ShardRouter::owner_of(vid_t v) const {
  std::size_t lo = 0;
  std::size_t hi = shards_.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (shards_[mid]->info.range.begin <= v) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}
// shard-hot-path-end

// ---------------------------------------------------------------------------
// Scatter + merge
// ---------------------------------------------------------------------------

namespace {

/// One planned subquery: which shard, what clipped form, and (batch
/// lookups) which original positions its answer scatters back into.
struct SubPlan {
  std::size_t shard = 0;
  serve::Query query;
  std::vector<std::uint32_t> positions;
  bool from_cache = false;
};

/// One sub-answer slot; workers write through Pending's pointers.
struct Sub {
  Answer answer;
  std::uint64_t epoch = 0;
  bool failed = false;
  bool stale = false;
};

}  // namespace

RouterResult ShardRouter::execute(const serve::Query& q) {
  RouterReply reply = execute_batch(std::span<const serve::Query>(&q, 1));
  return std::move(reply.results.front());
}

RouterReply ShardRouter::execute_batch(std::span<const serve::Query> queries) {
  const std::size_t n = queries.size();
  const std::size_t num_shards = shards_.size();
  RouterReply reply;
  reply.results.resize(n);
  if (n == 0) return reply;

  const double enqueue_time = now_seconds();

  // ---- plan: split every query by ownership -------------------------------
  std::vector<std::vector<SubPlan>> plans(n);
  std::vector<std::size_t> shard_touch(num_shards, 0);  // batch scatter scratch
  for (std::size_t i = 0; i < n; ++i) {
    const serve::Query& q = queries[i];
    switch (q.kind) {
      case serve::QueryKind::kPoint: {
        if (q.vertex >= num_vertices_) {
          reply.results[i].ok = false;
          reply.results[i].error = "vertex outside universe";
          break;
        }
        SubPlan p;
        p.shard = owner_of(q.vertex);
        p.query = q;
        plans[i].push_back(std::move(p));
        break;
      }
      case serve::QueryKind::kBatch: {
        bool bad = false;
        for (vid_t v : q.vertices) bad = bad || v >= num_vertices_;
        if (bad) {
          reply.results[i].ok = false;
          reply.results[i].error = "vertex outside universe";
          break;
        }
        // Pre-count per-shard splits (the RankService discipline), then
        // fill each shard's clipped vertex list + position map.
        std::fill(shard_touch.begin(), shard_touch.end(), 0);
        for (vid_t v : q.vertices) ++shard_touch[owner_of(v)];
        std::vector<std::size_t> plan_of(num_shards, SIZE_MAX);
        for (std::size_t s = 0; s < num_shards; ++s) {
          if (shard_touch[s] == 0) continue;
          plan_of[s] = plans[i].size();
          SubPlan p;
          p.shard = s;
          p.query.kind = serve::QueryKind::kBatch;
          p.query.vertices.reserve(shard_touch[s]);
          p.positions.reserve(shard_touch[s]);
          plans[i].push_back(std::move(p));
        }
        for (std::uint32_t pos = 0; pos < q.vertices.size(); ++pos) {
          SubPlan& p = plans[i][plan_of[owner_of(q.vertices[pos])]];
          p.query.vertices.push_back(q.vertices[pos]);
          p.positions.push_back(pos);
        }
        break;
      }
      case serve::QueryKind::kTopK: {
        // Fan out to every shard whose slice intersects the requested
        // range (all of them for a global query); a dead or degraded
        // shard's partial is substituted from its cache at merge time
        // instead of being waited on.
        for (std::size_t s = 0; s < num_shards; ++s) {
          const VertexRange owned = shards_[s]->info.range;
          if (!q.topk.global() && (q.topk.range.end <= owned.begin ||
                                   q.topk.range.begin >= owned.end)) {
            continue;
          }
          SubPlan p;
          p.shard = s;
          p.query = q;
          const auto h = static_cast<ShardHealth>(
              shards_[s]->health.load(std::memory_order_acquire));
          p.from_cache = q.topk.global() && h != ShardHealth::kAlive;
          plans[i].push_back(std::move(p));
        }
        break;
      }
    }
  }

  // ---- sub-answer slots (stable addresses for the workers) ----------------
  std::size_t total_subs = 0;
  for (const auto& ps : plans) total_subs += ps.size();
  std::vector<Sub> subs(total_subs);
  std::vector<std::size_t> sub_base(n, 0);

  Waiter waiter;
  waiter.remaining = 1;  // guard against arrivals racing the enqueue loop
  std::vector<std::vector<Pending>> to_enqueue(num_shards);
  {
    std::size_t base = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sub_base[i] = base;
      for (const SubPlan& p : plans[i]) {
        Sub& sub = subs[base++];
        if (p.from_cache) {
          ShardState& st = *shards_[p.shard];
          std::lock_guard<std::mutex> lock(st.cache_mutex);
          if (st.cached_topk_k == 0) {
            sub.failed = true;  // dead shard, nothing cached yet
          } else {
            sub.answer.topk = st.cached_topk;
            sub.epoch = st.cached_topk_epoch;
            sub.stale = true;
          }
          continue;
        }
        Pending pend;
        pend.query = p.query;
        pend.answer = &sub.answer;
        pend.epoch = &sub.epoch;
        pend.failed = &sub.failed;
        pend.stale = &sub.stale;
        pend.waiter = &waiter;
        pend.enqueued_at = enqueue_time;
        to_enqueue[p.shard].push_back(std::move(pend));
        {
          std::lock_guard<std::mutex> lock(waiter.mutex);
          ++waiter.remaining;
        }
      }
    }
  }

  // ---- coalesce: one queue splice + wake per shard ------------------------
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (to_enqueue[s].empty()) continue;
    ShardState& st = *shards_[s];
    {
      std::lock_guard<std::mutex> lock(st.mutex);
      for (Pending& p : to_enqueue[s]) st.queue.push_back(std::move(p));
    }
    st.cv.notify_one();
  }
  waiter.arrive();  // drop the guard
  waiter.wait();

  // ---- merge --------------------------------------------------------------
  std::array<std::span<const serve::TopKEntry>, kHotMergeParts> parts;
  std::array<std::uint32_t, kHotMergeParts> cursors;
  std::array<serve::TopKEntry, kHotMergeK> merge_buf;
  std::uint64_t any_min = 0;
  std::uint64_t any_max = 0;
  bool any_epoch = false;
  std::uint64_t stale_merges = 0;
  std::uint64_t mixed_merges = 0;

  for (std::size_t i = 0; i < n; ++i) {
    RouterResult& r = reply.results[i];
    if (!r.ok || plans[i].empty()) {
      if (r.ok && queries[i].kind == serve::QueryKind::kTopK) {
        r.result.epoch = 0;  // empty-range top-k: nothing to merge
      }
      continue;
    }
    const std::span<Sub> my_subs(subs.data() + sub_base[i],
                                 plans[i].size());
    std::uint64_t emin = 0;
    std::uint64_t emax = 0;
    bool first = true;
    for (const Sub& sub : my_subs) {
      if (sub.failed) {
        r.ok = false;
        r.error = "shard unavailable";
        break;
      }
      if (first) {
        emin = emax = sub.epoch;
        first = false;
      } else {
        emin = std::min(emin, sub.epoch);
        emax = std::max(emax, sub.epoch);
      }
      r.stale = r.stale || sub.stale;
    }
    if (!r.ok) continue;
    r.result.epoch = emax;
    r.mixed_epochs = emin != emax;
    if (!any_epoch) {
      any_min = emin;
      any_max = emax;
      any_epoch = true;
    } else {
      any_min = std::min(any_min, emin);
      any_max = std::max(any_max, emax);
    }
    if (r.mixed_epochs) ++mixed_merges;
    if (r.stale) ++stale_merges;

    switch (queries[i].kind) {
      case serve::QueryKind::kPoint:
        r.result.ranks = std::move(my_subs[0].answer.ranks);
        break;
      case serve::QueryKind::kBatch: {
        r.result.ranks.resize(queries[i].vertices.size());
        for (std::size_t p = 0; p < plans[i].size(); ++p) {
          const SubPlan& plan = plans[i][p];
          const Answer& a = my_subs[p].answer;
          // shard-hot-path-begin
          // Scatter-back: sub-answer j lands at its recorded original
          // position; pure indexed stores.
          for (std::size_t j = 0; j < plan.positions.size(); ++j) {
            r.result.ranks[plan.positions[j]] = a.ranks[j];
          }
          // shard-hot-path-end
        }
        break;
      }
      case serve::QueryKind::kTopK: {
        const std::size_t k = queries[i].topk.k;
        if (my_subs.size() <= kHotMergeParts && k <= kHotMergeK) {
          for (std::size_t p = 0; p < my_subs.size(); ++p) {
            parts[p] = my_subs[p].answer.topk;
            cursors[p] = 0;
          }
          const std::size_t filled = merge_sorted_partials(
              parts.data(), my_subs.size(), cursors.data(),
              merge_buf.data(), k);
          r.result.topk.assign(merge_buf.data(), merge_buf.data() + filled);
        } else {
          // Cold shape (huge k or absurd fleet width): the shared
          // serve-layer merge.
          std::vector<std::vector<serve::TopKEntry>> partials;
          partials.reserve(my_subs.size());
          for (Sub& sub : my_subs) {
            partials.push_back(std::move(sub.answer.topk));
          }
          r.result.topk =
              serve::merge_top_k(partials, static_cast<unsigned>(k));
        }
        break;
      }
    }
  }
  reply.min_epoch = any_min;
  reply.max_epoch = any_max;
  reply.mixed_epochs = mixed_merges > 0 || (any_epoch && any_min != any_max);

  stats_requests_.fetch_add(n, std::memory_order_relaxed);
  stats_stale_.fetch_add(stale_merges, std::memory_order_relaxed);
  stats_mixed_.fetch_add(mixed_merges, std::memory_order_relaxed);
  return reply;
}

// ---------------------------------------------------------------------------
// Worker: per-shard envelope round-trips + reconnect/backoff
// ---------------------------------------------------------------------------

void ShardRouter::fail_expired(ShardState& st, double now) {
  // Called under st.mutex. Old entries fail in place; arrival order of
  // the survivors is preserved.
  std::deque<Pending> keep;
  while (!st.queue.empty()) {
    Pending p = std::move(st.queue.front());
    st.queue.pop_front();
    if (now - p.enqueued_at > opt_.query_timeout_seconds) {
      *p.failed = true;
      p.waiter->arrive();
      stats_timeouts_.fetch_add(1, std::memory_order_relaxed);
    } else {
      keep.push_back(std::move(p));
    }
  }
  st.queue.swap(keep);
}

void ShardRouter::settle_dead_topk(ShardState& st) {
  // Called under st.mutex once the shard is marked dead. Mirrors the
  // plan-time cache substitution for queries that were already in the
  // queue when the shard died: a stale-but-correct partial now beats
  // an answer after query_timeout. Point/batch lookups have no
  // substitute and keep waiting for the reconnect.
  std::deque<Pending> keep;
  while (!st.queue.empty()) {
    Pending p = std::move(st.queue.front());
    st.queue.pop_front();
    bool served = false;
    if (p.query.kind == serve::QueryKind::kTopK && p.query.topk.global()) {
      std::lock_guard<std::mutex> cache_lock(st.cache_mutex);
      if (st.cached_topk_k != 0) {
        p.answer->topk = st.cached_topk;
        *p.epoch = st.cached_topk_epoch;
        *p.stale = true;
        served = true;
      }
    }
    if (served) {
      p.waiter->arrive();
    } else {
      keep.push_back(std::move(p));
    }
  }
  st.queue.swap(keep);
}

bool ShardRouter::round_trip(ShardState& st, Conn& conn,
                             std::vector<Pending>& batch) {
  QueryBatch qb;
  qb.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  qb.queries.reserve(batch.size());
  for (const Pending& p : batch) qb.queries.push_back(p.query);
  if (!conn.send(encode_query_batch(qb))) return false;

  Frame f;
  while (conn.recv(&f)) {
    if (f.type == MsgType::kRepublishNotice) {
      const std::optional<RepublishNotice> notice =
          decode_republish_notice(f);
      if (notice.has_value()) {
        st.last_epoch.store(notice->epoch, std::memory_order_release);
        stats_notices_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    if (f.type == MsgType::kError) {
      // The shard rejected this envelope (router bug / map drift); the
      // connection itself is still good.
      for (Pending& p : batch) {
        *p.failed = true;
        p.waiter->arrive();
      }
      return true;
    }
    if (f.type != MsgType::kAnswerBatch) return false;
    std::optional<AnswerBatch> ab = decode_answer_batch(f);
    if (!ab.has_value() || ab->request_id != qb.request_id ||
        ab->answers.size() != batch.size()) {
      return false;
    }
    st.last_epoch.store(ab->epoch, std::memory_order_release);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      // Refresh the failover cache from full global top-k answers
      // before the entry is consumed.
      const serve::Query& q = batch[i].query;
      if (q.kind == serve::QueryKind::kTopK && q.topk.global()) {
        std::lock_guard<std::mutex> lock(st.cache_mutex);
        if (ab->epoch > st.cached_topk_epoch ||
            (ab->epoch == st.cached_topk_epoch &&
             q.topk.k >= st.cached_topk_k)) {
          st.cached_topk = ab->answers[i].topk;
          st.cached_topk_epoch = ab->epoch;
          st.cached_topk_k = q.topk.k;
        }
      }
      *batch[i].answer = std::move(ab->answers[i]);
      *batch[i].epoch = ab->epoch;
      batch[i].waiter->arrive();
    }
    stats_envelopes_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ShardRouter::worker_loop(std::size_t s) {
  ShardState& st = *shards_[s];
  std::unique_ptr<Conn> conn = std::move(initial_conns_[s]);
  double backoff = opt_.backoff_base_seconds;
  std::uint32_t seen_generation = 0;
  std::vector<Pending> batch;

  for (;;) {
    ShardTarget target;
    {
      std::unique_lock<std::mutex> lock(st.mutex);
      // Disconnected workers never park: the reconnect path below
      // paces itself with the backoff wait, and keeps re-helloing even
      // with an empty queue so a restarted shard re-registers (and the
      // fleet heals) without waiting for the next owner-bound query.
      st.cv.wait(lock, [&] {
        return st.shutdown || !st.queue.empty() ||
               st.target_generation != seen_generation || conn == nullptr;
      });
      if (st.shutdown) break;
      if (st.target_generation != seen_generation) {
        seen_generation = st.target_generation;
        if (conn != nullptr) conn->close();
        conn.reset();  // the replacement target owns the link now
      }
      if (conn != nullptr) {
        // Coalesce: take EVERYTHING pending into one envelope.
        batch.clear();
        while (!st.queue.empty()) {
          batch.push_back(std::move(st.queue.front()));
          st.queue.pop_front();
        }
      }
      target = st.target;  // copy closures for use outside the lock
    }

    if (conn == nullptr) {
      if (stopping_.load(std::memory_order_acquire)) break;
      std::unique_ptr<Conn> fresh = target.connect();
      bool ok = fresh != nullptr;
      if (ok) {
        ok = fresh->send(
            encode_hello(Hello{static_cast<std::uint32_t>(s)}));
        Frame f;
        ok = ok && fresh->recv(&f);
        const std::optional<HelloAck> ack =
            ok ? decode_hello_ack(f) : std::nullopt;
        // A reborn shard must still own the same slice — anything else
        // is a different fleet and routing to it would corrupt answers.
        ok = ack.has_value() && ack->range == st.info.range &&
             ack->num_vertices_global == num_vertices_;
        if (ok) {
          st.last_epoch.store(ack->epoch, std::memory_order_release);
          conn = std::move(fresh);
        }
      }
      if (ok) {
        const auto prev = static_cast<ShardHealth>(st.health.exchange(
            static_cast<int>(ShardHealth::kAlive),
            std::memory_order_acq_rel));
        if (prev == ShardHealth::kDead) {
          stats_failovers_.fetch_add(1, std::memory_order_relaxed);
        }
        st.probe_failures.store(0, std::memory_order_relaxed);
        stats_reconnects_.fetch_add(1, std::memory_order_relaxed);
        backoff = opt_.backoff_base_seconds;
        continue;  // next iteration drains the queue
      }
      // Connect failed: the shard is dead until a hello succeeds.
      st.health.store(static_cast<int>(ShardHealth::kDead),
                      std::memory_order_release);
      std::unique_lock<std::mutex> lock(st.mutex);
      settle_dead_topk(st);
      fail_expired(st, now_seconds());
      // update_target interrupts the backoff (a respawned shard on a
      // new port should not wait out the old target's penalty).
      st.cv.wait_for(lock, std::chrono::duration<double>(backoff), [&] {
        return st.shutdown || st.target_generation != seen_generation;
      });
      backoff = std::min(backoff * 2.0, opt_.backoff_max_seconds);
      continue;
    }

    if (batch.empty()) continue;
    if (round_trip(st, *conn, batch)) {
      // Every entry was answered (or failed) and arrived — drop them
      // NOW: anything left in `batch` at shutdown is failed+arrived a
      // second time, against a caller stack frame that already
      // returned.
      batch.clear();
    } else {
      // Broken mid-flight: the envelope is unanswered, the shard is
      // suspect. Requeue IN ORDER at the front and enter the
      // reconnect path.
      conn->close();
      conn.reset();
      st.health.store(static_cast<int>(ShardHealth::kDead),
                      std::memory_order_release);
      std::lock_guard<std::mutex> lock(st.mutex);
      for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
        st.queue.push_front(std::move(*it));
      }
      batch.clear();
      settle_dead_topk(st);
    }
  }

  // Shutdown: nothing more will be sent; fail everything still queued
  // or held so no caller blocks forever.
  if (conn != nullptr) conn->close();
  for (Pending& p : batch) {
    *p.failed = true;
    p.waiter->arrive();
  }
  std::lock_guard<std::mutex> lock(st.mutex);
  while (!st.queue.empty()) {
    Pending& p = st.queue.front();
    *p.failed = true;
    p.waiter->arrive();
    st.queue.pop_front();
  }
}

// ---------------------------------------------------------------------------
// Health poller
// ---------------------------------------------------------------------------

void ShardRouter::poll_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    {
      std::unique_lock<std::mutex> lock(poll_wake_mutex_);
      poll_wake_cv_.wait_for(
          lock, std::chrono::duration<double>(opt_.health_poll_seconds),
          [this] { return stopping_.load(std::memory_order_acquire); });
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    for (auto& stp : shards_) {
      ShardState& st = *stp;
      std::function<std::optional<HealthSample>()> probe;
      {
        std::lock_guard<std::mutex> lock(st.mutex);
        probe = st.target.probe;
      }
      if (!probe) continue;
      const std::optional<HealthSample> h = probe();
      if (!h.has_value()) {
        const unsigned fails =
            st.probe_failures.fetch_add(1, std::memory_order_relaxed) + 1;
        if (fails >= opt_.fail_threshold) {
          st.health.store(static_cast<int>(ShardHealth::kDead),
                          std::memory_order_release);
        }
        continue;
      }
      st.probe_failures.store(0, std::memory_order_relaxed);
      // Only the worker's successful hello resurrects a dead shard —
      // a live metrics port with a dead query port must not re-route.
      if (static_cast<ShardHealth>(st.health.load(
              std::memory_order_acquire)) == ShardHealth::kDead) {
        continue;
      }
      const bool drowning = h->queue_depth > opt_.max_queue_depth ||
                            h->epoch_lag > opt_.max_epoch_lag ||
                            h->refresh_p99_seconds >
                                opt_.max_refresh_p99_seconds;
      st.health.store(static_cast<int>(drowning ? ShardHealth::kDegraded
                                                : ShardHealth::kAlive),
                      std::memory_order_release);
    }
  }
}

RouterStats ShardRouter::stats() const {
  RouterStats s;
  s.requests = stats_requests_.load(std::memory_order_relaxed);
  s.envelopes_sent = stats_envelopes_.load(std::memory_order_relaxed);
  s.reconnects = stats_reconnects_.load(std::memory_order_relaxed);
  s.failovers = stats_failovers_.load(std::memory_order_relaxed);
  s.stale_merges = stats_stale_.load(std::memory_order_relaxed);
  s.mixed_epoch_merges = stats_mixed_.load(std::memory_order_relaxed);
  s.republish_notices = stats_notices_.load(std::memory_order_relaxed);
  s.timeouts = stats_timeouts_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace hipa::shard
