// ShardRouter: the scatter/merge front end of a shard fleet.
//
//   * scatter — execute_batch() splits every request by vertex
//     ownership under the shard map (point/batch lookups go to the
//     owner; top-k fans out to every shard) and coalesces the
//     subqueries bound for one shard into ONE wire envelope per
//     round-trip — the cross-process mirror of RankService's per-node
//     shard batching. Caller threads overlap: subqueries enqueued
//     while a shard's round-trip is in flight ride the next envelope.
//   * merge — per-shard top-k partials merge into a global top-k
//     under the shared topk_less order, bitwise identical to a
//     single-process RankService over the same graph + epoch. Every
//     sub-answer carries its shard's answer epoch; a merge that mixes
//     epochs (a republish landed between shards) is flagged
//     `mixed_epochs` in the reply rather than silently blended, and
//     per-shard epochs are reported so callers can retry for a
//     consistent read.
//   * health + failover — a background thread polls each shard's
//     /metrics.json (poll_client) and marks shards kDegraded on
//     threshold (queue depth, answer-epoch lag, refresh p99) or kDead
//     on consecutive probe failures. Dead shards stop receiving
//     routed queries: global top-k merges substitute the shard's last
//     good partial (flagged stale), while owner-bound lookups wait in
//     the queue — the worker reconnects with exponential backoff and
//     re-hellos (the restarted shard re-registers its ownership),
//     then drains the backlog. Queries older than query_timeout fail
//     with an error, never a wrong answer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "serve/query.hpp"
#include "shard/poll_client.hpp"
#include "shard/proto.hpp"
#include "shard/transport.hpp"

namespace hipa::shard {

/// How the router reaches one shard: a connector for the query
/// connection and an optional health probe. Both implementations
/// (TCP and loopback) reduce to closures so tests run the identical
/// router logic.
struct ShardTarget {
  std::string name;  ///< diagnostics only
  std::function<std::unique_ptr<Conn>()> connect;
  /// Explicit health probe; empty = no polling unless probe_host is
  /// set below.
  std::function<std::optional<HealthSample>()> probe;
  /// When probe is empty and probe_host is set, the router builds a
  /// poll_client probe against probe_port (or, when probe_port <= 0,
  /// the metrics port the shard's HelloAck advertises).
  std::string probe_host;
  int probe_port = -1;
};

/// TCP target on host:port; metrics scraped from metrics_port when
/// >0, else from the port the shard's HelloAck advertises (resolved
/// by the router at hello time).
[[nodiscard]] ShardTarget tcp_target(const std::string& host, int port,
                                     int metrics_port = -1);

struct RouterOptions {
  double connect_timeout_seconds = 5.0;
  /// Health poll period; <= 0 disables the poller.
  double health_poll_seconds = 0.1;
  /// Consecutive failed probes (or broken query connections) before a
  /// shard is kDead.
  unsigned fail_threshold = 2;
  /// Degraded thresholds against the scraped health sample.
  std::int64_t max_queue_depth = 1024;
  std::int64_t max_epoch_lag = 8;
  double max_refresh_p99_seconds = 120.0;
  /// Reconnect backoff: base doubles up to the cap.
  double backoff_base_seconds = 0.05;
  double backoff_max_seconds = 1.0;
  /// A subquery unanswered for this long fails with an error (the
  /// caller sees ok = false, never fabricated data).
  double query_timeout_seconds = 10.0;
};

enum class ShardHealth : int { kAlive = 0, kDegraded = 1, kDead = 2 };

/// One request's outcome.
struct RouterResult {
  serve::QueryResult result;  ///< epoch = max contributing epoch
  bool ok = true;
  /// Top-k only: merged partials did not all carry one epoch (a
  /// republish raced the fan-out, or a dead shard's cached partial was
  /// substituted).
  bool mixed_epochs = false;
  /// Top-k only: at least one partial came from a dead shard's last
  /// good answer instead of a live round-trip.
  bool stale = false;
  std::string error;  ///< set when !ok
};

struct RouterReply {
  std::vector<RouterResult> results;
  bool mixed_epochs = false;  ///< any result flagged
  std::uint64_t min_epoch = 0;
  std::uint64_t max_epoch = 0;
};

struct RouterStats {
  std::uint64_t requests = 0;
  std::uint64_t envelopes_sent = 0;   ///< wire round-trips
  std::uint64_t reconnects = 0;
  std::uint64_t failovers = 0;        ///< dead -> alive transitions
  std::uint64_t stale_merges = 0;
  std::uint64_t mixed_epoch_merges = 0;
  std::uint64_t republish_notices = 0;
  std::uint64_t timeouts = 0;
};

class ShardRouter {
 public:
  /// Connects + hellos every target, validates that the advertised
  /// ranges tile [0, num_vertices) exactly, and starts the per-shard
  /// workers and the health poller. Throws hipa::Error on an
  /// unreachable shard or an inconsistent shard map.
  ShardRouter(std::vector<ShardTarget> targets, RouterOptions opt = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Scatter, round-trip, merge. Thread-safe; callers block until
  /// every subquery is answered, failed, or timed out.
  RouterReply execute_batch(std::span<const serve::Query> queries);
  RouterResult execute(const serve::Query& q);

  /// Swap one shard's target (a restarted shard that came back on a
  /// new port). The worker drops its connection and re-hellos against
  /// the new target; queued subqueries carry over.
  void update_target(std::size_t shard, ShardTarget target);

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] vid_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] VertexRange shard_range(std::size_t shard) const;
  [[nodiscard]] ShardHealth health(std::size_t shard) const;
  /// Last answer epoch seen from one shard (0 = none yet).
  [[nodiscard]] std::uint64_t shard_epoch(std::size_t shard) const;
  [[nodiscard]] RouterStats stats() const;

  void stop();

 private:
  /// Per-batch countdown the caller blocks on.
  struct Waiter {
    std::mutex mutex;
    std::condition_variable cv;
    unsigned remaining = 0;
    void arrive();
    void wait();
  };

  /// One caller-side subquery awaiting its shard round-trip.
  struct Pending {
    serve::Query query;          ///< shard-clipped form
    Answer* answer = nullptr;    ///< written by the worker
    std::uint64_t* epoch = nullptr;
    bool* failed = nullptr;
    bool* stale = nullptr;       ///< set when served from the cache
    Waiter* waiter = nullptr;
    double enqueued_at = 0.0;
  };

  struct ShardState {
    ShardTarget target;          ///< under queue mutex
    HelloAck info;               ///< fixed after construction (range)
    std::thread worker;

    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Pending> queue;
    bool shutdown = false;
    std::uint32_t target_generation = 0;  ///< bumped by update_target

    std::atomic<int> health{static_cast<int>(ShardHealth::kAlive)};
    std::atomic<std::uint64_t> last_epoch{0};
    std::atomic<unsigned> probe_failures{0};

    /// Last good top-k partial (the failover substitute), under
    /// cache_mutex.
    std::mutex cache_mutex;
    std::vector<serve::TopKEntry> cached_topk;
    std::uint64_t cached_topk_epoch = 0;
    unsigned cached_topk_k = 0;
  };

  void worker_loop(std::size_t s);
  void poll_loop();
  /// Drive one envelope round-trip over an established connection.
  /// False = connection is dead (requeue and reconnect).
  bool round_trip(ShardState& st, Conn& conn, std::vector<Pending>& batch);
  /// Fail queued entries older than query_timeout (under st.mutex).
  void fail_expired(ShardState& st, double now);
  /// Once a shard is dead: answer queued global top-k subqueries from
  /// the cached partial (stale) instead of letting them ride out the
  /// timeout; owner-bound lookups stay queued for the reconnect
  /// (under st.mutex).
  void settle_dead_topk(ShardState& st);
  [[nodiscard]] std::size_t owner_of(vid_t v) const;

  std::vector<std::unique_ptr<ShardState>> shards_;
  /// Hello-time connections handed to the workers (index = shard).
  std::vector<std::unique_ptr<Conn>> initial_conns_;
  RouterOptions opt_;
  vid_t num_vertices_ = 0;
  unsigned topk_k_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_request_id_{1};
  std::thread poll_thread_;
  std::mutex poll_wake_mutex_;
  std::condition_variable poll_wake_cv_;

  std::atomic<std::uint64_t> stats_requests_{0};
  std::atomic<std::uint64_t> stats_envelopes_{0};
  std::atomic<std::uint64_t> stats_reconnects_{0};
  std::atomic<std::uint64_t> stats_failovers_{0};
  std::atomic<std::uint64_t> stats_stale_{0};
  std::atomic<std::uint64_t> stats_mixed_{0};
  std::atomic<std::uint64_t> stats_notices_{0};
  std::atomic<std::uint64_t> stats_timeouts_{0};
};

}  // namespace hipa::shard
