// One shard: a RankService that owns a contiguous vertex range of a
// segmented HCSR v3 graph and answers the wire protocol over any
// transport listener.
//
// The shard's snapshot store is sized to its OWNED RANGE, not the
// whole graph — vertex ids are translated global -> range-local at the
// protocol boundary and back in answers (top-k entries re-offset to
// global ids). Recomputes stream the whole segmented file through
// OocoreEngine (bounded resident bytes, deterministic, bitwise
// identical across shards) and publish only the owned slice; since
// every shard runs the identical deterministic kernel, the router's
// merged answers are bitwise identical to a single process serving
// the full graph at the same epoch.
//
// Connections that say hello are subscribed to RepublishNotice pushes;
// a restarted shard re-publishes from a fresh compute into its
// snapshot ring before it starts accepting, so the first hello a
// router sees after failover already carries a serving epoch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "runtime/metrics.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "shard/proto.hpp"
#include "shard/transport.hpp"

namespace hipa::shard {

struct ShardServerOptions {
  std::uint32_t shard_id = 0;
  /// Owned global vertex range; must lie inside the graph's universe.
  VertexRange range{};
  /// Segmented HCSR v3 file (tools/hipa-convert output) shared by the
  /// whole fleet.
  std::string graph_path;
  /// OocoreEngine threads for recomputes.
  unsigned compute_threads = 2;
  /// Resident-byte budget for streamed recomputes (0 = unlimited).
  std::size_t resident_budget_bytes = 0;
  /// PageRank parameters of every recompute.
  unsigned iterations = 20;
  float damping = 0.85f;
  /// Replicated top-k depth of the shard's snapshots.
  unsigned topk_k = 64;
  /// Compute + publish the first epoch during construction. false =
  /// the caller publishes (tests injecting synthetic slices).
  bool compute_on_start = true;
  /// Metrics endpoint port (-1 = none, 0 = ephemeral) and bind
  /// address, forwarded to the RankService.
  int metrics_port = -1;
  std::string metrics_bind_addr = "127.0.0.1";
  /// Pin service workers (off by default: shard fleets oversubscribe
  /// one host in tests/benches).
  bool pin_workers = false;
  /// Registry for this shard's metrics; nullptr = process-global.
  /// Multi-shard-in-one-process tests pass distinct registries.
  runtime::metrics::MetricsRegistry* registry = nullptr;
};

class ShardServer {
 public:
  explicit ShardServer(ShardServerOptions opt);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Start accepting on `listener` (background thread; call once).
  void serve(std::unique_ptr<Listener> listener);

  /// Stream the segmented graph through OocoreEngine, publish the
  /// owned slice as the next epoch, and push RepublishNotice to every
  /// subscribed connection. Returns the published epoch. Serialized
  /// internally; safe against concurrent queries.
  std::uint64_t republish();

  /// Publish a caller-supplied slice (size == range().size()) as the
  /// next epoch — the injection point for epoch-consistency tests and
  /// the snapshot-ring restore path. Notifies subscribers like
  /// republish().
  std::uint64_t publish_slice(std::span<const rank_t> slice);

  /// Block until a kShutdown frame (or stop()) ends the serve loop.
  void wait();

  /// Close the listener and every connection, join all threads.
  /// Idempotent; destructor calls it.
  void stop();

  [[nodiscard]] VertexRange range() const { return opt_.range; }
  [[nodiscard]] vid_t num_vertices_global() const { return num_global_; }
  [[nodiscard]] std::uint64_t epoch() const { return store_->epoch(); }
  [[nodiscard]] int metrics_http_port() const {
    return service_->metrics_http_port();
  }
  [[nodiscard]] std::uint64_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t republishes() const {
    return republishes_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void handle_conn(const std::shared_ptr<Conn>& conn);
  [[nodiscard]] HelloAck hello_ack() const;
  /// Translate one global-id query to range-local; false when the
  /// query touches vertices outside the owned range.
  [[nodiscard]] bool to_local(const serve::Query& in,
                              serve::Query* out) const;
  std::uint64_t publish_and_notify(std::span<const rank_t> slice);

  ShardServerOptions opt_;
  vid_t num_global_ = 0;
  std::unique_ptr<serve::SnapshotStore> store_;
  std::unique_ptr<serve::RankService> service_;

  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Conn>> conns_;  ///< every live connection
  std::vector<Conn*> subscribers_;            ///< hello'd subset of conns_
  std::vector<std::thread> handlers_;         ///< under conns_mutex_
  std::atomic<bool> stopping_{false};

  std::mutex publish_mutex_;  ///< serializes recompute + publish
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;

  std::atomic<std::uint64_t> queries_served_{0};
  std::atomic<std::uint64_t> republishes_{0};
  runtime::metrics::Gauge publish_epoch_metric_;
};

}  // namespace hipa::shard
