// Wire protocol for multi-shard serving: length-prefixed, checksummed
// frames carrying the serve-layer query vocabulary across process
// boundaries. A shard is a partition whose inbox is a socket — the
// message discipline mirrors PCPM's scatter/gather: the router
// scatters subqueries into per-shard envelopes, shards answer with
// epoch-tagged batches, and the router merges.
//
// Frame layout (all integers little-endian, fixed width):
//
//   u32 magic        'HPSH' (0x48505348)
//   u32 type         MsgType
//   u64 payload_len  bytes following the header (<= kMaxFramePayload)
//   u64 checksum     FNV-1a over the payload bytes
//   u8  payload[payload_len]
//
// The checksum is the same FNV-1a the segmented HCSR v3 container uses
// for its payload slices — one integrity discipline across disk and
// wire. A frame that fails magic, length, or checksum validation
// poisons the connection (the transport returns false and the peer
// reconnects); there is no resync inside a stream.
//
// Message payloads are encoded with WireWriter/WireReader below.
// Every vertex id on the wire is a GLOBAL id; shards translate to
// their range-local id space internally.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "serve/query.hpp"
#include "serve/topk_index.hpp"

namespace hipa::shard {

inline constexpr std::uint32_t kFrameMagic = 0x48505348u;  // "HPSH"
/// Hard ceiling on one frame's payload: a batch envelope over the
/// largest sane query set stays far below this; anything bigger is a
/// corrupt length field.
inline constexpr std::uint64_t kMaxFramePayload = 64ull << 20;

/// Message types. Control-plane first, data-plane after.
enum class MsgType : std::uint32_t {
  kHello = 1,            ///< client -> shard: register + request identity
  kHelloAck = 2,         ///< shard -> client: ownership + epoch
  kQueryBatch = 3,       ///< router -> shard: one envelope of subqueries
  kAnswerBatch = 4,      ///< shard -> router: epoch-tagged answers
  kStatus = 5,           ///< client -> shard: liveness probe
  kStatusReply = 6,      ///< shard -> client: epoch + served counters
  kRepublishNotice = 7,  ///< shard -> subscribers: new epoch published
  kError = 8,            ///< shard -> client: request-level failure
  kShutdown = 9,         ///< client -> shard: drain and exit serve loop
};

/// One decoded frame: type + raw payload (already checksum-verified by
/// the transport).
struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

/// FNV-1a 64-bit — the same function graph/io uses for segment
/// payloads, reimplemented here so the wire layer depends only on
/// common/.
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t n);

// ---------------------------------------------------------------------------
// Payload encoding primitives
// ---------------------------------------------------------------------------

/// Append-only little-endian byte writer.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put(v); }
  void u32(std::uint32_t v) { put(v); }
  void u64(std::uint64_t v) { put(v); }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u32(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  template <typename T>
  void put(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over one payload. Decoding never throws:
/// out-of-bounds reads latch ok() = false and return zeros, and every
/// decode_* function checks ok() + full consumption before returning.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(get(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(get(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(get(4)); }
  std::uint64_t u64() { return get(8); }
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool done() const { return ok_ && pos_ == data_.size(); }

 private:
  std::uint64_t get(std::size_t bytes) {
    if (!ok_ || data_.size() - pos_ < bytes) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += bytes;
    return v;
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// Client registration. A connection that says hello is subscribed to
/// RepublishNotice pushes for its lifetime.
struct Hello {
  std::uint32_t client_id = 0;  ///< router-chosen, echoed in diagnostics
};

/// Shard identity: which slice of the vertex universe this shard owns,
/// and where it stands. The router builds its shard map from these and
/// validates that the ranges tile [0, num_vertices_global).
struct HelloAck {
  std::uint32_t shard_id = 0;
  VertexRange range{};               ///< owned global vertex range
  vid_t num_vertices_global = 0;     ///< whole-graph vertex universe
  std::uint64_t epoch = 0;           ///< current answer epoch
  std::uint32_t topk_k = 0;          ///< replicated top-k depth
  std::uint16_t metrics_port = 0;    ///< /metrics.json port (0 = none)
};

/// One envelope of subqueries (the scatter unit). Vertex ids global.
struct QueryBatch {
  std::uint64_t request_id = 0;
  std::vector<serve::Query> queries;
};

/// One epoch-tagged sub-answer. Mirrors serve::QueryResult: point and
/// batch answers fill `ranks`, top-k answers fill `topk` (global ids).
struct Answer {
  std::vector<rank_t> ranks;
  std::vector<serve::TopKEntry> topk;
};

/// Answers for one QueryBatch — all evaluated against ONE pinned
/// snapshot, so a single epoch stamps the whole envelope. The router's
/// epoch-consistency logic (mixed-epoch flagging) keys off this.
struct AnswerBatch {
  std::uint64_t request_id = 0;
  std::uint64_t epoch = 0;
  std::vector<Answer> answers;
};

struct StatusReply {
  std::uint64_t epoch = 0;
  std::uint64_t queries_served = 0;
  std::uint64_t republishes = 0;
};

/// Unsolicited push to every subscribed connection after a publish.
struct RepublishNotice {
  std::uint64_t epoch = 0;
};

struct ErrorReply {
  std::uint64_t request_id = 0;
  std::string message;
};

// Encoders produce complete frames; decoders return nullopt on any
// malformed payload (truncation, trailing bytes, bad enum).
[[nodiscard]] Frame encode_hello(const Hello& m);
[[nodiscard]] Frame encode_hello_ack(const HelloAck& m);
[[nodiscard]] Frame encode_query_batch(const QueryBatch& m);
[[nodiscard]] Frame encode_answer_batch(const AnswerBatch& m);
[[nodiscard]] Frame encode_status();
[[nodiscard]] Frame encode_status_reply(const StatusReply& m);
[[nodiscard]] Frame encode_republish_notice(const RepublishNotice& m);
[[nodiscard]] Frame encode_error(const ErrorReply& m);
[[nodiscard]] Frame encode_shutdown();

[[nodiscard]] std::optional<Hello> decode_hello(const Frame& f);
[[nodiscard]] std::optional<HelloAck> decode_hello_ack(const Frame& f);
[[nodiscard]] std::optional<QueryBatch> decode_query_batch(const Frame& f);
[[nodiscard]] std::optional<AnswerBatch> decode_answer_batch(const Frame& f);
[[nodiscard]] std::optional<StatusReply> decode_status_reply(const Frame& f);
[[nodiscard]] std::optional<RepublishNotice> decode_republish_notice(
    const Frame& f);
[[nodiscard]] std::optional<ErrorReply> decode_error(const Frame& f);

}  // namespace hipa::shard
