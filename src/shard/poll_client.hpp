// Metrics poll client: one blocking HTTP GET against a shard's
// MetricsHttpServer plus a parser for the health signals the router's
// failover logic consumes (queue depth, answer-epoch lag, refresh
// latency — the PR 9 feed).
//
// Deliberately header-only over plain POSIX sockets + common/minijson
// so it adds no link dependency: hipa-top (which links only
// hipa_common) and the ShardRouter share exactly this client.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>

#include "common/minijson.hpp"

namespace hipa::shard {

/// Blocking HTTP/1.0 GET; returns the response body (headers
/// stripped), or nullopt on connect/transfer failure. `timeout`
/// bounds both the connect and each read.
inline std::optional<std::string> http_get(const std::string& host, int port,
                                           const std::string& path,
                                           double timeout_seconds = 1.0) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return std::nullopt;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  timeval tv{};
  tv.tv_sec = static_cast<long>(timeout_seconds);
  tv.tv_usec = static_cast<long>((timeout_seconds - static_cast<double>(
                                                        tv.tv_sec)) *
                                 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, req.data(), req.size(), 0) !=
      static_cast<ssize_t>(req.size())) {
    ::close(fd);
    return std::nullopt;
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos) return std::nullopt;
  return response.substr(body + 4);
}

/// The health signals the router keys failover on, extracted from one
/// /metrics.json snapshot. Absent metrics stay at their defaults (a
/// fresh shard that has served nothing is healthy, not suspect).
struct HealthSample {
  double uptime_seconds = 0.0;
  std::int64_t queue_depth = 0;       ///< hipa_worker_queue_depth
  std::int64_t answer_epoch = 0;      ///< hipa_answer_epoch
  std::int64_t epoch_lag = 0;         ///< hipa_answer_epoch_lag
  std::int64_t publish_epoch = 0;     ///< hipa_publish_epoch
  double refresh_p99_seconds = 0.0;   ///< hipa_refresh_seconds{kind=full}
  double queries_total = 0.0;         ///< hipa_queries_total (all classes)
};

/// Parse one /metrics.json body into the router's health view.
/// nullopt on malformed JSON.
inline std::optional<HealthSample> parse_health(const std::string& body) {
  std::string err;
  const json::ValuePtr root = json::parse(body, &err);
  if (root == nullptr || !root->is(json::Value::Type::kObject)) {
    return std::nullopt;
  }
  HealthSample h;
  if (const json::Value* up = root->find("uptime_seconds");
      up != nullptr && up->is(json::Value::Type::kNumber)) {
    h.uptime_seconds = up->number;
  }
  const auto entry_name = [](const json::ValuePtr& e) -> std::string {
    const json::Value* n = e->find("name");
    return n != nullptr && n->is(json::Value::Type::kString) ? n->str
                                                             : std::string();
  };
  if (const json::Value* gauges = root->find("gauges");
      gauges != nullptr && gauges->is(json::Value::Type::kArray)) {
    for (const json::ValuePtr& g : gauges->array) {
      const json::Value* v = g->find("value");
      if (v == nullptr || !v->is(json::Value::Type::kNumber)) continue;
      const std::string name = entry_name(g);
      const auto value = static_cast<std::int64_t>(v->number);
      if (name == "hipa_worker_queue_depth") h.queue_depth = value;
      if (name == "hipa_answer_epoch") h.answer_epoch = value;
      if (name == "hipa_answer_epoch_lag") h.epoch_lag = value;
      if (name == "hipa_publish_epoch") h.publish_epoch = value;
    }
  }
  if (const json::Value* counters = root->find("counters");
      counters != nullptr && counters->is(json::Value::Type::kArray)) {
    for (const json::ValuePtr& c : counters->array) {
      const json::Value* v = c->find("value");
      if (v == nullptr || !v->is(json::Value::Type::kNumber)) continue;
      if (entry_name(c) == "hipa_queries_total") {
        h.queries_total += v->number;
      }
    }
  }
  if (const json::Value* hists = root->find("histograms");
      hists != nullptr && hists->is(json::Value::Type::kArray)) {
    for (const json::ValuePtr& hist : hists->array) {
      if (entry_name(hist) != "hipa_refresh_seconds") continue;
      const json::Value* lv = hist->find("label_value");
      if (lv == nullptr || !lv->is(json::Value::Type::kString) ||
          lv->str != "full") {
        continue;
      }
      const json::Value* p99 = hist->find("p99");
      if (p99 != nullptr && p99->is(json::Value::Type::kNumber)) {
        h.refresh_p99_seconds = p99->number;
      }
    }
  }
  return h;
}

/// One-call scrape: GET /metrics.json and parse. nullopt = connect
/// failure or malformed body (both count as a failed health probe).
inline std::optional<HealthSample> poll_health(const std::string& host,
                                               int port,
                                               double timeout_seconds = 1.0) {
  const std::optional<std::string> body =
      http_get(host, port, "/metrics.json", timeout_seconds);
  if (!body.has_value()) return std::nullopt;
  return parse_health(*body);
}

}  // namespace hipa::shard
