#include "shard/shard_server.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "engines/backend.hpp"
#include "engines/oocore_engine.hpp"
#include "graph/io.hpp"

namespace hipa::shard {

ShardServer::ShardServer(ShardServerOptions opt) : opt_(std::move(opt)) {
  HIPA_CHECK(!opt_.graph_path.empty(), "shard needs a segmented graph path");
  HIPA_CHECK(!opt_.range.empty(), "shard range is empty");

  // One cheap open to learn the universe and validate ownership; the
  // recompute path re-opens with its own staging budget.
  {
    graph::SegmentedCsr scsr = graph::SegmentedCsr::open(opt_.graph_path);
    num_global_ = scsr.num_vertices();
  }
  HIPA_CHECK(opt_.range.end <= num_global_,
             "shard range [" << opt_.range.begin << ", " << opt_.range.end
                             << ") outside vertex universe " << num_global_);

  serve::StoreOptions store_opt;
  store_opt.num_nodes = 1;  // the shard IS the locality domain
  store_opt.topk_k = opt_.topk_k;
  store_opt.registry = opt_.registry;
  store_ = std::make_unique<serve::SnapshotStore>(opt_.range.size(),
                                                  store_opt);

  // Same name + help as the refresher's gauge: the poll client reads
  // one publish-epoch signal regardless of which component publishes.
  runtime::metrics::MetricsRegistry& reg =
      opt_.registry != nullptr ? *opt_.registry
                               : runtime::metrics::MetricsRegistry::global();
  publish_epoch_metric_ =
      reg.gauge("hipa_publish_epoch", "Last epoch published by the refresher");

  if (opt_.compute_on_start) republish();

  serve::ServiceOptions svc_opt;
  svc_opt.pin_workers = opt_.pin_workers;
  svc_opt.registry = opt_.registry;
  svc_opt.metrics_port = opt_.metrics_port;
  svc_opt.metrics_bind_addr = opt_.metrics_bind_addr;
  service_ = std::make_unique<serve::RankService>(*store_, svc_opt);
}

ShardServer::~ShardServer() { stop(); }

void ShardServer::serve(std::unique_ptr<Listener> listener) {
  HIPA_CHECK(listener_ == nullptr, "shard already serving");
  listener_ = std::move(listener);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

std::uint64_t ShardServer::republish() {
  // Stream the shared file; every shard executes the identical
  // deterministic kernel, so slices agree bitwise across the fleet.
  engine::NativeBackend backend;
  engine::OocoreOptions oo;
  oo.num_threads = opt_.compute_threads;
  oo.resident_budget_bytes = opt_.resident_budget_bytes;
  engine::OocoreEngine eng(opt_.graph_path, oo, backend);
  engine::PageRankOptions pr(opt_.iterations, opt_.damping);
  const engine::RunResult result = eng.run(pr);
  HIPA_CHECK(result.ranks.size() == num_global_,
             "recompute produced " << result.ranks.size() << " ranks for "
                                   << num_global_ << " vertices");
  const std::span<const rank_t> slice(result.ranks.data() + opt_.range.begin,
                                      opt_.range.size());
  return publish_and_notify(slice);
}

std::uint64_t ShardServer::publish_slice(std::span<const rank_t> slice) {
  HIPA_CHECK(slice.size() == opt_.range.size(),
             "slice size " << slice.size() << " != owned range size "
                           << opt_.range.size());
  return publish_and_notify(slice);
}

std::uint64_t ShardServer::publish_and_notify(std::span<const rank_t> slice) {
  std::uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    epoch = store_->publish(slice);
    republishes_.fetch_add(1, std::memory_order_relaxed);
    publish_epoch_metric_.set(static_cast<std::int64_t>(epoch));
  }
  const Frame notice = encode_republish_notice(RepublishNotice{epoch});
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (Conn* c : subscribers_) (void)c->send(notice);
  return epoch;
}

void ShardServer::wait() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait(lock, [this] {
    return stop_requested_ || stopping_.load(std::memory_order_acquire);
  });
}

void ShardServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // Second caller (e.g. destructor after explicit stop): nothing to
    // join — the first stop() owns teardown.
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (listener_ != nullptr) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& c : conns_) c->close();
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
}

HelloAck ShardServer::hello_ack() const {
  HelloAck ack;
  ack.shard_id = opt_.shard_id;
  ack.range = opt_.range;
  ack.num_vertices_global = num_global_;
  ack.epoch = store_->epoch();
  ack.topk_k = opt_.topk_k;
  const int mp = service_->metrics_http_port();
  ack.metrics_port = mp > 0 ? static_cast<std::uint16_t>(mp) : 0;
  return ack;
}

bool ShardServer::to_local(const serve::Query& in, serve::Query* out) const {
  const VertexRange owned = opt_.range;
  switch (in.kind) {
    case serve::QueryKind::kPoint:
      if (!owned.contains(in.vertex)) return false;
      *out = serve::Query::point(in.vertex - owned.begin);
      return true;
    case serve::QueryKind::kBatch: {
      std::vector<vid_t> local(in.vertices.size());
      for (std::size_t i = 0; i < in.vertices.size(); ++i) {
        if (!owned.contains(in.vertices[i])) return false;
        local[i] = in.vertices[i] - owned.begin;
      }
      *out = serve::Query::batch(std::move(local));
      return true;
    }
    case serve::QueryKind::kTopK: {
      if (in.topk.global()) {
        *out = serve::Query::top_k(in.topk.k);
        return true;
      }
      // Clip the requested global range to the owned slice; the caller
      // pre-checks for an empty intersection.
      const vid_t lo = std::max(in.topk.range.begin, owned.begin);
      const vid_t hi = std::min(in.topk.range.end, owned.end);
      *out = serve::Query::top_k(in.topk.k,
                                 VertexRange{lo - owned.begin,
                                             hi - owned.begin});
      return true;
    }
  }
  return false;
}

void ShardServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::unique_ptr<Conn> accepted = listener_->accept();
    if (accepted == nullptr) return;  // listener closed
    std::shared_ptr<Conn> conn(std::move(accepted));
    std::lock_guard<std::mutex> lock(conns_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      conn->close();
      return;
    }
    conns_.push_back(conn);
    handlers_.emplace_back([this, conn] { handle_conn(conn); });
  }
}

void ShardServer::handle_conn(const std::shared_ptr<Conn>& conn) {
  Frame f;
  while (conn->recv(&f)) {
    switch (f.type) {
      case MsgType::kHello: {
        if (!decode_hello(f).has_value()) break;
        {
          std::lock_guard<std::mutex> lock(conns_mutex_);
          subscribers_.push_back(conn.get());
        }
        (void)conn->send(encode_hello_ack(hello_ack()));
        break;
      }
      case MsgType::kQueryBatch: {
        const std::optional<QueryBatch> qb = decode_query_batch(f);
        if (!qb.has_value()) break;  // corrupt envelope: drop
        // Scatter targets: executable local queries, plus constant
        // empty answers for top-k ranges that miss the owned slice.
        std::vector<serve::Query> local;
        local.reserve(qb->queries.size());
        std::vector<int> exec_index(qb->queries.size(), -1);
        bool bad = false;
        for (std::size_t i = 0; i < qb->queries.size() && !bad; ++i) {
          const serve::Query& q = qb->queries[i];
          if (q.kind == serve::QueryKind::kTopK && !q.topk.global() &&
              (q.topk.range.end <= opt_.range.begin ||
               q.topk.range.begin >= opt_.range.end)) {
            continue;  // empty intersection: answer stays empty
          }
          serve::Query lq;
          if (!to_local(q, &lq)) {
            bad = true;
            break;
          }
          exec_index[i] = static_cast<int>(local.size());
          local.push_back(std::move(lq));
        }
        if (bad) {
          (void)conn->send(encode_error(ErrorReply{
              qb->request_id, "query outside owned vertex range"}));
          break;
        }
        std::vector<serve::QueryResult> results;
        if (!local.empty()) results = service_->execute_batch(local);

        AnswerBatch ab;
        ab.request_id = qb->request_id;
        ab.epoch = results.empty() ? store_->epoch() : results[0].epoch;
        ab.answers.resize(qb->queries.size());
        for (std::size_t i = 0; i < qb->queries.size(); ++i) {
          if (exec_index[i] < 0) continue;
          serve::QueryResult& r =
              results[static_cast<std::size_t>(exec_index[i])];
          Answer& a = ab.answers[i];
          a.ranks = std::move(r.ranks);
          a.topk = std::move(r.topk);
          for (serve::TopKEntry& e : a.topk) e.vertex += opt_.range.begin;
        }
        queries_served_.fetch_add(qb->queries.size(),
                                  std::memory_order_relaxed);
        (void)conn->send(encode_answer_batch(ab));
        break;
      }
      case MsgType::kStatus: {
        StatusReply r;
        r.epoch = store_->epoch();
        r.queries_served = queries_served();
        r.republishes = republishes();
        (void)conn->send(encode_status_reply(r));
        break;
      }
      case MsgType::kShutdown: {
        conn->close();
        std::lock_guard<std::mutex> lock(stop_mutex_);
        stop_requested_ = true;
        stop_cv_.notify_all();
        break;
      }
      default:
        break;  // server-to-client types arriving here are ignored
    }
  }
  // Connection gone: drop the subscription; the shared_ptr in conns_
  // is reaped by stop() (bounded by process lifetime, not per-conn —
  // fleets hold a handful of router connections).
  std::lock_guard<std::mutex> lock(conns_mutex_);
  subscribers_.erase(
      std::remove(subscribers_.begin(), subscribers_.end(), conn.get()),
      subscribers_.end());
}

}  // namespace hipa::shard
