// Frame transport: blocking, connection-oriented delivery of
// proto::Frame messages with two interchangeable implementations —
// POSIX TCP sockets (the real deployment path) and a same-process
// in-memory loopback (deterministic, fd-free, the TSan test medium).
//
// Contract shared by both:
//
//   * send() is thread-safe per connection (internally serialized), so
//     a shard can push RepublishNotice frames from its publisher
//     thread while a handler thread writes answers on the same
//     connection;
//   * recv() is single-consumer: exactly one thread drains a
//     connection. It blocks until a full, checksum-verified frame
//     arrives and returns false on close, error, or a frame that
//     fails validation (no resync — a poisoned stream is dead);
//   * close() is idempotent, callable from any thread, and unblocks a
//     pending recv().
//
// Listeners accept() in a loop; close() unblocks a pending accept()
// which then returns nullptr.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "shard/proto.hpp"

namespace hipa::shard {

/// One bidirectional frame connection.
class Conn {
 public:
  virtual ~Conn() = default;
  /// Serialize + deliver one frame. False = peer gone (connection is
  /// unusable afterwards). Thread-safe.
  virtual bool send(const Frame& frame) = 0;
  /// Block for the next frame. False = closed / error / corrupt frame.
  /// Single consumer.
  virtual bool recv(Frame* out) = 0;
  /// Idempotent; unblocks a pending recv on this end.
  virtual void close() = 0;
};

/// One accept loop.
class Listener {
 public:
  virtual ~Listener() = default;
  /// Block for the next connection; nullptr once close()d.
  virtual std::unique_ptr<Conn> accept() = 0;
  virtual void close() = 0;
  /// Bound TCP port; -1 for loopback listeners.
  [[nodiscard]] virtual int port() const { return -1; }
};

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// Bind + listen on `bind_addr:port` (port 0 = ephemeral; resolve via
/// Listener::port()). Throws hipa::Error when the address cannot be
/// bound.
[[nodiscard]] std::unique_ptr<Listener> listen_tcp(
    const std::string& bind_addr, int port);

/// Blocking connect with an overall timeout. nullptr on failure
/// (refused, timeout, unresolvable) — callers retry with backoff.
[[nodiscard]] std::unique_ptr<Conn> connect_tcp(const std::string& host,
                                                int port,
                                                double timeout_seconds = 5.0);

// ---------------------------------------------------------------------------
// In-process loopback
// ---------------------------------------------------------------------------

/// Same-process listener: connect_loopback() enqueues a connection
/// pair; accept() dequeues the server end. Frames move through
/// mutex+condvar deques — no fds, fully deterministic under TSan.
class LoopbackListener final : public Listener {
 public:
  LoopbackListener() = default;
  ~LoopbackListener() override { close(); }

  std::unique_ptr<Conn> accept() override;
  void close() override;

  /// Client half of a new connection to this listener; nullptr once
  /// the listener is closed.
  [[nodiscard]] std::unique_ptr<Conn> connect();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Conn>> pending_;
  bool closed_ = false;
};

}  // namespace hipa::shard
