#include "shard/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace hipa::shard {

namespace {

// Fixed-width frame header, serialized little-endian field by field
// (no struct punning — layout is the wire spec, not the ABI).
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void encode_header(std::uint8_t* p, const Frame& f) {
  put_u32(p, kFrameMagic);
  put_u32(p + 4, static_cast<std::uint32_t>(f.type));
  put_u64(p + 8, f.payload.size());
  put_u64(p + 16, fnv1a(f.payload.data(), f.payload.size()));
}

/// Validate a received header. False = poisoned stream.
bool decode_header(const std::uint8_t* p, MsgType* type,
                   std::uint64_t* payload_len, std::uint64_t* checksum) {
  if (get_u32(p) != kFrameMagic) return false;
  const std::uint32_t t = get_u32(p + 4);
  if (t < static_cast<std::uint32_t>(MsgType::kHello) ||
      t > static_cast<std::uint32_t>(MsgType::kShutdown)) {
    return false;
  }
  *type = static_cast<MsgType>(t);
  *payload_len = get_u64(p + 8);
  *checksum = get_u64(p + 16);
  return *payload_len <= kMaxFramePayload;
}

// ---------------------------------------------------------------------------
// TCP connection
// ---------------------------------------------------------------------------

class TcpConn final : public Conn {
 public:
  explicit TcpConn(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  ~TcpConn() override { close(); }

  bool send(const Frame& frame) override {
    std::lock_guard<std::mutex> lock(send_mutex_);
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) return false;
    std::uint8_t header[kHeaderBytes];
    encode_header(header, frame);
    return send_all(fd, header, sizeof header) &&
           send_all(fd, frame.payload.data(), frame.payload.size());
  }

  bool recv(Frame* out) override {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) return false;
    std::uint8_t header[kHeaderBytes];
    if (!recv_all(fd, header, sizeof header)) return false;
    std::uint64_t payload_len = 0;
    std::uint64_t checksum = 0;
    if (!decode_header(header, &out->type, &payload_len, &checksum)) {
      return false;
    }
    out->payload.resize(payload_len);
    if (!recv_all(fd, out->payload.data(), payload_len)) return false;
    return fnv1a(out->payload.data(), out->payload.size()) == checksum;
  }

  void close() override {
    const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);  // unblocks a pending recv
      ::close(fd);
    }
  }

 private:
  static bool send_all(int fd, const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::size_t off = 0;
    while (off < n) {
      const ssize_t w = ::send(fd, p + off, n - off, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) return false;
      off += static_cast<std::size_t>(w);
    }
    return true;
  }
  static bool recv_all(int fd, void* data, std::size_t n) {
    auto* p = static_cast<std::uint8_t*>(data);
    std::size_t off = 0;
    while (off < n) {
      const ssize_t r = ::recv(fd, p + off, n - off, 0);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) return false;
      off += static_cast<std::size_t>(r);
    }
    return true;
  }

  std::atomic<int> fd_;
  std::mutex send_mutex_;
};

class TcpListener final : public Listener {
 public:
  TcpListener(const std::string& bind_addr, int port) {
    HIPA_CHECK(port >= 0 && port <= 65535,
               "shard listener port " << port << " out of range");
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    HIPA_CHECK(fd_ >= 0, "shard listener: socket() failed, errno " << errno);
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    HIPA_CHECK(::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) == 1,
               "shard listener: bad bind address '" << bind_addr << "'");
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
            0 ||
        ::listen(fd_, 64) != 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      HIPA_CHECK(false, "shard listener: cannot bind " << bind_addr << ':'
                                                       << port << ", errno "
                                                       << err);
    }
    socklen_t len = sizeof addr;
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = static_cast<int>(ntohs(addr.sin_port));
  }
  ~TcpListener() override { close(); }

  std::unique_ptr<Conn> accept() override {
    while (!closed_.load(std::memory_order_acquire)) {
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (ready <= 0) continue;  // timeout / EINTR: re-check closed
      const int client = ::accept(fd_, nullptr, nullptr);
      if (client < 0) continue;
      return std::make_unique<TcpConn>(client);
    }
    return nullptr;
  }

  void close() override {
    if (closed_.exchange(true, std::memory_order_acq_rel)) return;
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  [[nodiscard]] int port() const override { return port_; }

 private:
  int fd_ = -1;
  int port_ = -1;
  std::atomic<bool> closed_{false};
};

// ---------------------------------------------------------------------------
// In-process loopback
// ---------------------------------------------------------------------------

/// Shared state of one loopback connection: two one-way frame queues.
/// Each endpoint sends into its own queue and receives from the
/// peer's.
struct LoopbackPipe {
  struct Dir {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Frame> frames;
    bool closed = false;
  };
  Dir dir[2];  // [0] = a->b, [1] = b->a
};

class LoopbackConn final : public Conn {
 public:
  LoopbackConn(std::shared_ptr<LoopbackPipe> pipe, int side)
      : pipe_(std::move(pipe)), side_(side) {}
  ~LoopbackConn() override { close(); }

  bool send(const Frame& frame) override {
    auto& d = pipe_->dir[side_];
    {
      std::lock_guard<std::mutex> lock(d.mutex);
      if (d.closed) return false;
      d.frames.push_back(frame);
    }
    d.cv.notify_one();
    return true;
  }

  bool recv(Frame* out) override {
    auto& d = pipe_->dir[1 - side_];
    std::unique_lock<std::mutex> lock(d.mutex);
    d.cv.wait(lock, [&] { return d.closed || !d.frames.empty(); });
    if (d.frames.empty()) return false;  // closed and drained
    *out = std::move(d.frames.front());
    d.frames.pop_front();
    return true;
  }

  void close() override {
    // Close both directions: the peer's recv unblocks and our own
    // pending recv (waiting on the peer's queue) does too.
    for (auto& d : pipe_->dir) {
      {
        std::lock_guard<std::mutex> lock(d.mutex);
        d.closed = true;
      }
      d.cv.notify_all();
    }
  }

 private:
  std::shared_ptr<LoopbackPipe> pipe_;
  int side_;
};

}  // namespace

std::unique_ptr<Listener> listen_tcp(const std::string& bind_addr,
                                     int port) {
  return std::make_unique<TcpListener>(bind_addr, port);
}

std::unique_ptr<Conn> connect_tcp(const std::string& host, int port,
                                  double timeout_seconds) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return nullptr;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;

  // Non-blocking connect bounded by poll so a dead host costs
  // timeout_seconds, not the kernel's SYN-retry minutes.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return nullptr;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms = static_cast<int>(timeout_seconds * 1000.0);
    if (::poll(&pfd, 1, timeout_ms) <= 0) {
      ::close(fd);
      return nullptr;
    }
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return nullptr;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return std::make_unique<TcpConn>(fd);
}

std::unique_ptr<Conn> LoopbackListener::accept() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || !pending_.empty(); });
  if (pending_.empty()) return nullptr;
  std::unique_ptr<Conn> conn = std::move(pending_.front());
  pending_.pop_front();
  return conn;
}

void LoopbackListener::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::unique_ptr<Conn> LoopbackListener::connect() {
  auto pipe = std::make_shared<LoopbackPipe>();
  auto server_end = std::make_unique<LoopbackConn>(pipe, 1);
  auto client_end = std::make_unique<LoopbackConn>(pipe, 0);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return nullptr;
    pending_.push_back(std::move(server_end));
  }
  cv_.notify_one();
  return client_end;
}

}  // namespace hipa::shard
