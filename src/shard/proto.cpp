#include "shard/proto.hpp"

namespace hipa::shard {

std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

/// Element-count sanity cap for decoded containers: with 4-byte
/// elements this bounds a single vector at the frame payload ceiling,
/// so a corrupt count field cannot trigger a multi-GB resize before
/// the bounds-checked reads fail.
constexpr std::uint32_t kMaxWireElems =
    static_cast<std::uint32_t>(kMaxFramePayload / 4);

Frame frame(MsgType type, WireWriter&& w) {
  return Frame{type, w.take()};
}

void write_query(WireWriter& w, const serve::Query& q) {
  w.u8(static_cast<std::uint8_t>(q.kind));
  switch (q.kind) {
    case serve::QueryKind::kPoint:
      w.u32(q.vertex);
      break;
    case serve::QueryKind::kBatch:
      w.u32(static_cast<std::uint32_t>(q.vertices.size()));
      for (vid_t v : q.vertices) w.u32(v);
      break;
    case serve::QueryKind::kTopK:
      w.u32(q.topk.k);
      w.u32(q.topk.range.begin);
      w.u32(q.topk.range.end);
      break;
  }
}

bool read_query(WireReader& r, serve::Query* out) {
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(serve::QueryKind::kTopK)) return false;
  out->kind = static_cast<serve::QueryKind>(kind);
  switch (out->kind) {
    case serve::QueryKind::kPoint:
      out->vertex = r.u32();
      break;
    case serve::QueryKind::kBatch: {
      const std::uint32_t n = r.u32();
      if (n > kMaxWireElems) return false;
      out->vertices.resize(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        out->vertices[i] = r.u32();
      }
      break;
    }
    case serve::QueryKind::kTopK:
      out->topk.k = r.u32();
      out->topk.range.begin = r.u32();
      out->topk.range.end = r.u32();
      break;
  }
  return r.ok();
}

}  // namespace

Frame encode_hello(const Hello& m) {
  WireWriter w;
  w.u32(m.client_id);
  return frame(MsgType::kHello, std::move(w));
}

Frame encode_hello_ack(const HelloAck& m) {
  WireWriter w;
  w.u32(m.shard_id);
  w.u32(m.range.begin);
  w.u32(m.range.end);
  w.u32(m.num_vertices_global);
  w.u64(m.epoch);
  w.u32(m.topk_k);
  w.u16(m.metrics_port);
  return frame(MsgType::kHelloAck, std::move(w));
}

Frame encode_query_batch(const QueryBatch& m) {
  WireWriter w;
  w.u64(m.request_id);
  w.u32(static_cast<std::uint32_t>(m.queries.size()));
  for (const serve::Query& q : m.queries) write_query(w, q);
  return frame(MsgType::kQueryBatch, std::move(w));
}

Frame encode_answer_batch(const AnswerBatch& m) {
  WireWriter w;
  w.u64(m.request_id);
  w.u64(m.epoch);
  w.u32(static_cast<std::uint32_t>(m.answers.size()));
  for (const Answer& a : m.answers) {
    w.u32(static_cast<std::uint32_t>(a.ranks.size()));
    for (rank_t v : a.ranks) w.f32(v);
    w.u32(static_cast<std::uint32_t>(a.topk.size()));
    for (const serve::TopKEntry& e : a.topk) {
      w.u32(e.vertex);
      w.f32(e.rank);
    }
  }
  return frame(MsgType::kAnswerBatch, std::move(w));
}

Frame encode_status() { return Frame{MsgType::kStatus, {}}; }

Frame encode_status_reply(const StatusReply& m) {
  WireWriter w;
  w.u64(m.epoch);
  w.u64(m.queries_served);
  w.u64(m.republishes);
  return frame(MsgType::kStatusReply, std::move(w));
}

Frame encode_republish_notice(const RepublishNotice& m) {
  WireWriter w;
  w.u64(m.epoch);
  return frame(MsgType::kRepublishNotice, std::move(w));
}

Frame encode_error(const ErrorReply& m) {
  WireWriter w;
  w.u64(m.request_id);
  w.str(m.message);
  return frame(MsgType::kError, std::move(w));
}

Frame encode_shutdown() { return Frame{MsgType::kShutdown, {}}; }

std::optional<Hello> decode_hello(const Frame& f) {
  if (f.type != MsgType::kHello) return std::nullopt;
  WireReader r(f.payload);
  Hello m;
  m.client_id = r.u32();
  if (!r.done()) return std::nullopt;
  return m;
}

std::optional<HelloAck> decode_hello_ack(const Frame& f) {
  if (f.type != MsgType::kHelloAck) return std::nullopt;
  WireReader r(f.payload);
  HelloAck m;
  m.shard_id = r.u32();
  m.range.begin = r.u32();
  m.range.end = r.u32();
  m.num_vertices_global = r.u32();
  m.epoch = r.u64();
  m.topk_k = r.u32();
  m.metrics_port = r.u16();
  if (!r.done()) return std::nullopt;
  return m;
}

std::optional<QueryBatch> decode_query_batch(const Frame& f) {
  if (f.type != MsgType::kQueryBatch) return std::nullopt;
  WireReader r(f.payload);
  QueryBatch m;
  m.request_id = r.u64();
  const std::uint32_t n = r.u32();
  if (n > kMaxWireElems) return std::nullopt;
  m.queries.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!read_query(r, &m.queries[i])) return std::nullopt;
  }
  if (!r.done()) return std::nullopt;
  return m;
}

std::optional<AnswerBatch> decode_answer_batch(const Frame& f) {
  if (f.type != MsgType::kAnswerBatch) return std::nullopt;
  WireReader r(f.payload);
  AnswerBatch m;
  m.request_id = r.u64();
  m.epoch = r.u64();
  const std::uint32_t n = r.u32();
  if (n > kMaxWireElems) return std::nullopt;
  m.answers.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Answer& a = m.answers[i];
    const std::uint32_t nr = r.u32();
    if (!r.ok() || nr > kMaxWireElems) return std::nullopt;
    a.ranks.resize(nr);
    for (std::uint32_t j = 0; j < nr && r.ok(); ++j) a.ranks[j] = r.f32();
    const std::uint32_t nt = r.u32();
    if (!r.ok() || nt > kMaxWireElems) return std::nullopt;
    a.topk.resize(nt);
    for (std::uint32_t j = 0; j < nt && r.ok(); ++j) {
      a.topk[j].vertex = r.u32();
      a.topk[j].rank = r.f32();
    }
    if (!r.ok()) return std::nullopt;
  }
  if (!r.done()) return std::nullopt;
  return m;
}

std::optional<StatusReply> decode_status_reply(const Frame& f) {
  if (f.type != MsgType::kStatusReply) return std::nullopt;
  WireReader r(f.payload);
  StatusReply m;
  m.epoch = r.u64();
  m.queries_served = r.u64();
  m.republishes = r.u64();
  if (!r.done()) return std::nullopt;
  return m;
}

std::optional<RepublishNotice> decode_republish_notice(const Frame& f) {
  if (f.type != MsgType::kRepublishNotice) return std::nullopt;
  WireReader r(f.payload);
  RepublishNotice m;
  m.epoch = r.u64();
  if (!r.done()) return std::nullopt;
  return m;
}

std::optional<ErrorReply> decode_error(const Frame& f) {
  if (f.type != MsgType::kError) return std::nullopt;
  WireReader r(f.payload);
  ErrorReply m;
  m.request_id = r.u64();
  m.message = r.str();
  if (!r.done()) return std::nullopt;
  return m;
}

}  // namespace hipa::shard
