#include "algos/pagerank_delta.hpp"

#include <cmath>

namespace hipa::algo {

DeltaResult pagerank_delta_reference(const graph::Graph& g,
                                     const DeltaOptions& opt) {
  const vid_t n = g.num_vertices();
  HIPA_CHECK(n > 0, "empty graph");
  const auto base =
      static_cast<rank_t>((1.0 - opt.damping) / static_cast<double>(n));
  const auto threshold =
      static_cast<rank_t>(opt.epsilon / static_cast<double>(n));

  // Rank accumulates from zero; the teleport mass starts as residual.
  std::vector<rank_t> rank(n, 0.0f);
  std::vector<rank_t> residual(n, base);
  DeltaResult result;

  unsigned iter = 0;
  for (; iter < opt.max_iterations; ++iter) {
    std::uint64_t active = 0;
    // Synchronous rounds: snapshot the residuals, then push.
    std::vector<rank_t> pending(n, 0.0f);
    for (vid_t v = 0; v < n; ++v) {
      const rank_t res = residual[v];
      if (std::abs(res) < threshold) continue;
      ++active;
      residual[v] = 0.0f;
      rank[v] += res;
      const vid_t d = g.out.degree(v);
      if (d == 0) continue;
      const rank_t push = opt.damping * res / static_cast<rank_t>(d);
      for (vid_t u : g.out.neighbors(v)) pending[u] += push;
      result.total_pushes += d;
    }
    if (active == 0) break;
    for (vid_t v = 0; v < n; ++v) residual[v] += pending[v];
  }
  result.iterations = iter;
  result.ranks = std::move(rank);
  return result;
}

}  // namespace hipa::algo
