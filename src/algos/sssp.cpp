#include "algos/sssp.hpp"

#include <queue>

namespace hipa::algo {

SsspResult sssp_reference(const graph::Graph& g, vid_t source) {
  const vid_t n = g.num_vertices();
  HIPA_CHECK(source < n, "source out of range");
  SsspResult result;
  result.distance.assign(n, kSsspUnreached);
  result.distance[source] = 0.0f;
  using Item = std::pair<float, vid_t>;  // (distance, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  pq.emplace(0.0f, source);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > result.distance[v]) continue;  // stale entry
    const float w = engine::SsspKernel::weight(v);
    for (vid_t u : g.out.neighbors(v)) {
      const float nd = d + w;
      if (nd < result.distance[u]) {
        result.distance[u] = nd;
        pq.emplace(nd, u);
      }
    }
  }
  for (float d : result.distance) {
    if (d < kSsspUnreached) ++result.reached;
  }
  return result;
}

}  // namespace hipa::algo
