// Single-source shortest paths through the kernel-generic engine: a
// thin wrapper over PcpmEngine::run<SsspKernel>. Edge weights are
// source-determined — w(u) = SsspKernel::weight(u), a fixed function
// of the source vertex id — because the PCPM bin format fans one
// message per (source vertex, destination partition) across that
// partition's destinations (DESIGN.md §3.11). sssp_reference
// (sssp.cpp) is the serial Dijkstra oracle over the same weights.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "engines/backend.hpp"
#include "engines/pcpm_engine.hpp"
#include "graph/csr.hpp"

namespace hipa::algo {

/// Finite unreached sentinel shared with the kernel (absorption-proof:
/// sentinel + weight still loses every min against a real distance).
inline constexpr float kSsspUnreached = engine::SsspKernel::kUnreached;

struct SsspOptions {
  unsigned threads = 4;
  unsigned num_nodes = 1;
  std::uint64_t partition_bytes = 256 * 1024;
};

struct SsspResult {
  std::vector<float> distance;  ///< >= kSsspUnreached if not reachable
  std::uint64_t reached = 0;
  engine::RunReport report;
};

/// Serial Dijkstra reference over the kernel's weight function.
[[nodiscard]] SsspResult sssp_reference(const graph::Graph& g, vid_t source);

/// HiPa-style parallel SSSP on either backend.
template <class Backend>
[[nodiscard]] SsspResult sssp(const graph::Graph& g, vid_t source,
                              const SsspOptions& opt, Backend& backend) {
  HIPA_CHECK(source < g.num_vertices(), "source out of range");
  // num_nodes passes through unclamped (see bfs(): the engine clamps
  // the plan and pads the thread-team spec itself).
  auto popt = engine::PcpmOptions::hipa(opt.threads,
                                        std::max(1u, opt.num_nodes),
                                        opt.partition_bytes);
  engine::PcpmEngine<Backend> eng(g, popt, backend);
  engine::SsspOptions ko;
  ko.source = source;
  auto kr = eng.template run<engine::SsspKernel>(ko);

  SsspResult result;
  result.distance = std::move(kr.values);
  for (float d : result.distance) {
    if (d < kSsspUnreached) ++result.reached;
  }
  result.report = std::move(kr.report);
  return result;
}

}  // namespace hipa::algo
