// Level-synchronous breadth-first search (paper §6's third extension
// target), with the HiPa treatment: vertex ranges partitioned and
// pinned per thread, persistent node-bound team, NUMA-placed arrays.
//
// The expansion uses idempotent dense writes (next[u] = 1) instead of
// CAS, so races are benign; levels are applied in a second phase.
#pragma once

#include <vector>

#include "engines/backend.hpp"
#include "graph/csr.hpp"
#include "partition/plan.hpp"

namespace hipa::algo {

inline constexpr std::uint32_t kUnreached = ~0u;

struct BfsOptions {
  unsigned threads = 4;
  unsigned num_nodes = 1;
  std::uint64_t partition_bytes = 256 * 1024;
};

struct BfsResult {
  std::vector<std::uint32_t> distance;  ///< kUnreached if not reachable
  std::uint32_t levels = 0;             ///< eccentricity of the source
  std::uint64_t reached = 0;
  engine::RunReport report;
};

/// Serial reference BFS.
[[nodiscard]] BfsResult bfs_reference(const graph::Graph& g, vid_t source);

/// HiPa-style parallel BFS on either backend.
template <class Backend>
[[nodiscard]] BfsResult bfs(const graph::Graph& g, vid_t source,
                            const BfsOptions& opt, Backend& backend);

// ---- implementation ---------------------------------------------------------

template <class Backend>
BfsResult bfs(const graph::Graph& g, vid_t source, const BfsOptions& opt,
              Backend& backend) {
  using Mem = typename Backend::Mem;
  const vid_t n = g.num_vertices();
  HIPA_CHECK(source < n, "source out of range");

  part::PlanConfig cfg;
  cfg.partition_bytes = opt.partition_bytes;
  cfg.num_nodes = std::max(1u, std::min(opt.num_nodes, opt.threads));
  cfg.threads_per_node.assign(cfg.num_nodes, 0);
  for (unsigned t = 0; t < opt.threads; ++t) {
    ++cfg.threads_per_node[t % cfg.num_nodes];
  }
  const part::HierarchicalPlan plan =
      part::build_hierarchical_plan(g.out, cfg);

  AlignedBuffer<std::uint32_t> dist(n);
  AlignedBuffer<std::uint8_t> frontier(n);
  AlignedBuffer<std::uint8_t> next(n);
  for (unsigned node = 0; node < plan.num_nodes; ++node) {
    const VertexRange vr = plan.node_vertex_range(node);
    backend.register_buffer(dist.data() + vr.begin,
                            vr.size() * sizeof(std::uint32_t),
                            engine::DataPlacement::kNode, node);
    backend.register_buffer(frontier.data() + vr.begin, vr.size(),
                            engine::DataPlacement::kNode, node);
    backend.register_buffer(next.data() + vr.begin, vr.size(),
                            engine::DataPlacement::kNode, node);
  }

  engine::ThreadTeamSpec spec;
  spec.num_threads = opt.threads;
  spec.persistent = true;
  spec.binding = engine::ThreadTeamSpec::Binding::kNodeBlocked;
  spec.threads_per_node = plan.threads_per_node;
  spec.threads_per_node.resize(
      std::max<std::size_t>(spec.threads_per_node.size(), opt.num_nodes), 0);

  BfsResult result;
  std::vector<std::uint64_t> found_per_thread(opt.threads, 0);

  const double t0 = backend.now_seconds();
  backend.start_team(spec);
  backend.phase([&](unsigned t, Mem& mem) {
    const VertexRange r = plan.table.vertices_of_thread(t);
    mem.stream_write(dist.data() + r.begin, r.size());
    mem.stream_write(frontier.data() + r.begin, r.size());
    mem.stream_write(next.data() + r.begin, r.size());
    for (vid_t v = r.begin; v < r.end; ++v) {
      dist[v] = kUnreached;
      frontier[v] = 0;
      next[v] = 0;
    }
    mem.work(r.size());
  });
  dist[source] = 0;
  frontier[source] = 1;
  result.reached = 1;

  std::uint32_t level = 0;
  for (;;) {
    // Expand: every frontier vertex marks its unreached out-neighbors.
    backend.phase([&](unsigned t, Mem& mem) {
      const auto [pb, pe] = plan.table.partitions_of_thread(t);
      for (std::uint32_t p = pb; p < pe; ++p) {
        const VertexRange r = plan.parts.range(p);
        mem.stream_read(frontier.data() + r.begin, r.size());
        for (vid_t v = r.begin; v < r.end; ++v) {
          if (frontier[v] == 0) continue;
          const auto neigh = g.out.neighbors(v);
          mem.stream_read(neigh.data(), neigh.size());
          for (vid_t u : neigh) {
            if (mem.load(dist.data() + u) == kUnreached) {
              // Idempotent publish; races write the same value.
              mem.store(next.data() + u, std::uint8_t{1});
            }
          }
          mem.work(neigh.size() + 2);
        }
      }
    });
    // Apply: consume marks, assign distances, build the new frontier.
    const std::uint32_t new_level = level + 1;
    backend.phase([&](unsigned t, Mem& mem) {
      const VertexRange r = plan.table.vertices_of_thread(t);
      std::uint64_t found = 0;
      mem.stream_read(next.data() + r.begin, r.size());
      mem.stream_write(frontier.data() + r.begin, r.size());
      for (vid_t v = r.begin; v < r.end; ++v) {
        const bool fresh = next[v] != 0 && dist[v] == kUnreached;
        if (fresh) {
          mem.store(dist.data() + v, new_level);
          ++found;
        }
        frontier[v] = fresh ? 1 : 0;
        next[v] = 0;
      }
      mem.work(r.size());
      found_per_thread[t] = found;
    });
    std::uint64_t found_total = 0;
    for (std::uint64_t f : found_per_thread) found_total += f;
    if (found_total == 0) break;
    result.reached += found_total;
    level = new_level;
  }
  backend.end_team();

  result.levels = level;
  result.report.seconds = backend.now_seconds() - t0;
  result.report.iterations = level;
  result.distance.assign(dist.begin(), dist.end());
  return result;
}

}  // namespace hipa::algo
