// Breadth-first search through the kernel-generic engine (paper §6's
// third extension target): a thin wrapper over
// PcpmEngine::run<BfsKernel> — hierarchical partitions, pinned
// persistent threads, NUMA-placed attribute arrays and the
// active-partition frontier all come from the shared engine; only the
// result shaping (levels/reached from the distance vector) lives here.
// bfs_reference (bfs.cpp) is the serial correctness oracle.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "engines/backend.hpp"
#include "engines/pcpm_engine.hpp"
#include "graph/csr.hpp"

namespace hipa::algo {

inline constexpr std::uint32_t kUnreached = ~0u;
static_assert(kUnreached == engine::BfsKernel::kUnreached,
              "algo and kernel sentinel must agree");

struct BfsOptions {
  unsigned threads = 4;
  unsigned num_nodes = 1;
  std::uint64_t partition_bytes = 256 * 1024;
};

struct BfsResult {
  std::vector<std::uint32_t> distance;  ///< kUnreached if not reachable
  std::uint32_t levels = 0;             ///< eccentricity of the source
  std::uint64_t reached = 0;
  engine::RunReport report;
};

/// Serial reference BFS.
[[nodiscard]] BfsResult bfs_reference(const graph::Graph& g, vid_t source);

/// HiPa-style parallel BFS on either backend.
template <class Backend>
[[nodiscard]] BfsResult bfs(const graph::Graph& g, vid_t source,
                            const BfsOptions& opt, Backend& backend) {
  HIPA_CHECK(source < g.num_vertices(), "source out of range");
  // num_nodes passes through unclamped: the engine clamps its plan to
  // the thread count itself, but pads the thread-team spec back up to
  // num_nodes so node-blocked placement sees one entry per node.
  auto popt = engine::PcpmOptions::hipa(opt.threads,
                                        std::max(1u, opt.num_nodes),
                                        opt.partition_bytes);
  engine::PcpmEngine<Backend> eng(g, popt, backend);
  engine::BfsOptions ko;
  ko.source = source;
  auto kr = eng.template run<engine::BfsKernel>(ko);

  BfsResult result;
  result.distance = std::move(kr.values);
  for (std::uint32_t d : result.distance) {
    if (d == kUnreached) continue;
    ++result.reached;
    result.levels = std::max(result.levels, d);
  }
  result.report = std::move(kr.report);
  return result;
}

}  // namespace hipa::algo
