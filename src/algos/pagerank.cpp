#include "algos/pagerank.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "common/timer.hpp"
#include "engines/polymer_engine.hpp"
#include "engines/vpr_engine.hpp"
#include "graph/reorder.hpp"
#include "runtime/affinity.hpp"

namespace hipa::algo {

std::vector<rank_t> pagerank_reference(const graph::Graph& g,
                                       unsigned iterations, rank_t damping) {
  const vid_t n = g.num_vertices();
  HIPA_CHECK(n > 0, "empty graph");
  std::vector<rank_t> rank(n, static_cast<rank_t>(1.0 / n));
  std::vector<rank_t> contrib(n);
  const auto base = static_cast<rank_t>((1.0 - damping) / n);
  for (unsigned it = 0; it < iterations; ++it) {
    for (vid_t v = 0; v < n; ++v) {
      const vid_t d = g.out.degree(v);
      contrib[v] = d == 0 ? 0.0f : rank[v] / static_cast<rank_t>(d);
    }
    for (vid_t v = 0; v < n; ++v) {
      rank_t sum = 0.0f;
      for (vid_t u : g.in.neighbors(v)) sum += contrib[u];
      rank[v] = base + damping * sum;
    }
  }
  return rank;
}

double l1_distance(std::span<const rank_t> a, std::span<const rank_t> b) {
  HIPA_CHECK(a.size() == b.size(), "rank vector size mismatch");
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d += std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return d;
}

std::vector<vid_t> top_k(std::span<const rank_t> ranks, std::size_t k) {
  std::vector<vid_t> ids(ranks.size());
  std::iota(ids.begin(), ids.end(), vid_t{0});
  k = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<long>(k),
                    ids.end(), [&](vid_t a, vid_t b) {
                      if (ranks[a] != ranks[b]) return ranks[a] > ranks[b];
                      return a < b;
                    });
  ids.resize(k);
  return ids;
}

std::span<const Method> all_methods() {
  static constexpr std::array<Method, 5> kAll = {
      Method::kHipa, Method::kPpr, Method::kVpr, Method::kGpop,
      Method::kPolymer};
  return kAll;
}

const char* method_name(Method m) {
  switch (m) {
    case Method::kHipa:
      return "HiPa";
    case Method::kPpr:
      return "p-PR";
    case Method::kVpr:
      return "v-PR";
    case Method::kGpop:
      return "GPOP";
    case Method::kPolymer:
      return "Polymer";
  }
  return "?";
}

std::optional<Method> method_from_name(std::string_view name) {
  for (Method m : all_methods()) {
    if (name == method_name(m)) return m;  // exact round-trip
  }
  // Command-line-friendly lowercase aliases (--methods=hipa,ppr).
  if (name == "hipa") return Method::kHipa;
  if (name == "ppr") return Method::kPpr;
  if (name == "vpr") return Method::kVpr;
  if (name == "gpop") return Method::kGpop;
  if (name == "polymer") return Method::kPolymer;
  return std::nullopt;
}

const char* reorder_name(engine::Reorder r) {
  switch (r) {
    case engine::Reorder::kNone:
      return "none";
    case engine::Reorder::kDegree:
      return "degree";
    case engine::Reorder::kHub:
      return "hub";
  }
  return "?";
}

std::optional<engine::Reorder> reorder_from_name(std::string_view name) {
  if (name == "none") return engine::Reorder::kNone;
  if (name == "degree") return engine::Reorder::kDegree;
  if (name == "hub") return engine::Reorder::kHub;
  return std::nullopt;
}

graph::Permutation make_reorder_permutation(engine::Reorder r,
                                            const graph::Graph& g) {
  switch (r) {
    case engine::Reorder::kNone:
      return graph::identity_permutation(g.num_vertices());
    case engine::Reorder::kDegree:
      return graph::degree_sort_permutation(g.out);
    case engine::Reorder::kHub:
      return graph::hub_cluster_permutation(g.out);
  }
  HIPA_CHECK(false, "unknown reorder mode");
  __builtin_unreachable();
}

unsigned default_threads(Method m, const sim::Topology& topo) {
  switch (m) {
    case Method::kHipa:
    case Method::kVpr:
    case Method::kPolymer:
      return topo.num_logical_cores();
    case Method::kPpr:
      // The paper finds p-PR peaks at 16 threads on 20 physical cores.
      return std::max(1u, topo.num_physical_cores() * 4 / 5);
    case Method::kGpop:
      return topo.num_physical_cores();
  }
  return 1;
}

std::uint64_t default_partition_bytes(Method m, unsigned scale_denom) {
  HIPA_CHECK(scale_denom >= 1);
  switch (m) {
    case Method::kHipa:
    case Method::kPpr:
      return std::max<std::uint64_t>(256 * 1024 / scale_denom, 256);
    case Method::kGpop:
      return std::max<std::uint64_t>(1024 * 1024 / scale_denom, 1024);
    case Method::kVpr:
    case Method::kPolymer:
      return 0;
  }
  return 0;
}

namespace {

template <class Backend>
RunResult dispatch(Method m, const graph::Graph& g, Backend& backend,
                   unsigned threads, std::uint64_t part_bytes,
                   unsigned num_nodes, const MethodParams& params) {
  const engine::PageRankOptions& pr = params.pr;
  switch (m) {
    case Method::kHipa: {
      auto opt = engine::PcpmOptions::hipa(threads, num_nodes, part_bytes);
      engine::PcpmEngine<Backend> eng(g, opt, backend);
      return eng.run(pr);
    }
    case Method::kPpr: {
      auto opt = engine::PcpmOptions::ppr(threads, num_nodes, part_bytes);
      engine::PcpmEngine<Backend> eng(g, opt, backend);
      return eng.run(pr);
    }
    case Method::kGpop: {
      auto opt = engine::PcpmOptions::gpop(threads, num_nodes, part_bytes);
      engine::PcpmEngine<Backend> eng(g, opt, backend);
      return eng.run(pr);
    }
    case Method::kVpr: {
      engine::VprOptions opt;
      opt.num_threads = threads;
      engine::VprEngine<Backend> eng(g, opt, backend);
      return eng.run(pr);
    }
    case Method::kPolymer: {
      engine::PolymerOptions opt;
      opt.num_threads = threads;
      opt.num_nodes = num_nodes;
      engine::PolymerEngine<Backend> eng(g, opt, backend);
      return eng.run(pr);
    }
  }
  HIPA_CHECK(false, "unknown method");
  __builtin_unreachable();
}

/// The facade's reorder pipeline: permute the graph's vertex ids,
/// run the engine on the permuted CSR (with the knob cleared so the
/// engine sees a plain graph), and inverse-permute the ranks back to
/// original ids — out[v] = ranks[perm[v]]. Every engine is
/// deterministic for a fixed (graph, options), so any manual
/// permute/run/inverse-permute with the same permutation reproduces
/// this bitwise. `charge_wall_prep` adds the permutation's wall-clock
/// cost to preprocessing_seconds (native runs only — simulated reports
/// count modeled cycles, not host time).
template <class RunFn>
RunResult run_with_reorder(const graph::Graph& g, const MethodParams& params,
                           bool charge_wall_prep, RunFn&& run) {
  if (params.pr.reorder == engine::Reorder::kNone) return run(g, params);
  Timer prep_timer;
  const graph::Permutation perm =
      make_reorder_permutation(params.pr.reorder, g);
  const graph::Graph permuted = graph::apply_permutation(g, perm);
  const double prep_seconds = prep_timer.seconds();
  MethodParams inner = params;
  inner.pr.reorder = engine::Reorder::kNone;
  RunResult result = run(permuted, inner);
  std::vector<rank_t> unpermuted(result.ranks.size());
  for (vid_t v = 0; v < static_cast<vid_t>(unpermuted.size()); ++v) {
    unpermuted[v] = result.ranks[perm[v]];
  }
  result.ranks = std::move(unpermuted);
  if (charge_wall_prep) {
    result.report.preprocessing_seconds += prep_seconds;
  }
  return result;
}

}  // namespace

RunResult run_method_sim(Method m, const graph::Graph& g,
                         sim::SimMachine& machine,
                         const MethodParams& params) {
  return run_with_reorder(
      g, params, /*charge_wall_prep=*/false,
      [&](const graph::Graph& rg, const MethodParams& p) {
        engine::SimBackend backend(machine);
        const unsigned threads = p.threads != 0
                                     ? p.threads
                                     : default_threads(m, machine.topology());
        const std::uint64_t part_bytes =
            p.partition_bytes != 0
                ? p.partition_bytes
                : default_partition_bytes(m, p.scale_denom);
        return dispatch(m, rg, backend, threads, part_bytes,
                        machine.topology().num_nodes, p);
      });
}

RunResult run_method_native(Method m, const graph::Graph& g,
                            const MethodParams& params) {
  return run_with_reorder(
      g, params, /*charge_wall_prep=*/true,
      [&](const graph::Graph& rg, const MethodParams& p) {
        engine::NativeBackend backend;
        const unsigned cpus = runtime::available_cpus();
        const unsigned threads = p.threads != 0 ? p.threads : cpus;
        std::uint64_t part_bytes = p.partition_bytes;
        if (part_bytes == 0) {
          part_bytes = default_partition_bytes(m, p.scale_denom);
          if (part_bytes == 0) {
            part_bytes = 256 * 1024;  // vertex-centric: unused
          }
        }
        // Native runs on this host: treat it as one NUMA node.
        return dispatch(m, rg, backend, threads, part_bytes, 1, p);
      });
}

}  // namespace hipa::algo
