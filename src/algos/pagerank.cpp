#include "algos/pagerank.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

namespace hipa::algo {

std::vector<rank_t> pagerank_reference(const graph::Graph& g,
                                       unsigned iterations, rank_t damping) {
  const vid_t n = g.num_vertices();
  HIPA_CHECK(n > 0, "empty graph");
  std::vector<rank_t> rank(n, static_cast<rank_t>(1.0 / n));
  std::vector<rank_t> contrib(n);
  const auto base = static_cast<rank_t>((1.0 - damping) / n);
  for (unsigned it = 0; it < iterations; ++it) {
    for (vid_t v = 0; v < n; ++v) {
      const vid_t d = g.out.degree(v);
      contrib[v] = d == 0 ? 0.0f : rank[v] / static_cast<rank_t>(d);
    }
    for (vid_t v = 0; v < n; ++v) {
      rank_t sum = 0.0f;
      for (vid_t u : g.in.neighbors(v)) sum += contrib[u];
      rank[v] = base + damping * sum;
    }
  }
  return rank;
}

std::vector<rank_t> ppr_reference(const graph::Graph& g, unsigned iterations,
                                  rank_t damping,
                                  std::span<const vid_t> seeds) {
  const vid_t n = g.num_vertices();
  HIPA_CHECK(n > 0, "empty graph");
  // Restart vector: uniform over seeds (uniform over all vertices when
  // the seed set is empty — matches PprKernel::Pull::setup and
  // PprKernel::begin_run).
  std::vector<rank_t> rst(n, 0.0f);
  if (seeds.empty()) {
    std::fill(rst.begin(), rst.end(),
              static_cast<rank_t>(1.0 / static_cast<double>(n)));
  } else {
    const auto w =
        static_cast<rank_t>(1.0 / static_cast<double>(seeds.size()));
    for (vid_t v : seeds) {
      HIPA_CHECK(v < n, "PPR seed out of range");
      rst[v] += w;
    }
  }
  const rank_t omd = 1.0f - damping;
  std::vector<rank_t> rank(rst);
  std::vector<rank_t> contrib(n);
  for (unsigned it = 0; it < iterations; ++it) {
    for (vid_t v = 0; v < n; ++v) {
      const vid_t d = g.out.degree(v);
      contrib[v] = d == 0 ? 0.0f : rank[v] / static_cast<rank_t>(d);
    }
    for (vid_t v = 0; v < n; ++v) {
      rank_t sum = 0.0f;
      for (vid_t u : g.in.neighbors(v)) sum += contrib[u];
      rank[v] = omd * rst[v] + damping * sum;
    }
  }
  return rank;
}

double l1_distance(std::span<const rank_t> a, std::span<const rank_t> b) {
  HIPA_CHECK(a.size() == b.size(), "rank vector size mismatch");
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d += std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return d;
}

std::vector<vid_t> top_k(std::span<const rank_t> ranks, std::size_t k) {
  std::vector<vid_t> ids(ranks.size());
  std::iota(ids.begin(), ids.end(), vid_t{0});
  k = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<long>(k),
                    ids.end(), [&](vid_t a, vid_t b) {
                      if (ranks[a] != ranks[b]) return ranks[a] > ranks[b];
                      return a < b;
                    });
  ids.resize(k);
  return ids;
}

std::span<const Method> all_methods() {
  static constexpr std::array<Method, 5> kAll = {
      Method::kHipa, Method::kPpr, Method::kVpr, Method::kGpop,
      Method::kPolymer};
  return kAll;
}

const char* method_name(Method m) {
  switch (m) {
    case Method::kHipa:
      return "HiPa";
    case Method::kPpr:
      return "p-PR";
    case Method::kVpr:
      return "v-PR";
    case Method::kGpop:
      return "GPOP";
    case Method::kPolymer:
      return "Polymer";
  }
  return "?";
}

std::optional<Method> method_from_name(std::string_view name) {
  for (Method m : all_methods()) {
    if (name == method_name(m)) return m;  // exact round-trip
  }
  // Command-line-friendly lowercase aliases (--methods=hipa,ppr).
  if (name == "hipa") return Method::kHipa;
  if (name == "ppr") return Method::kPpr;
  if (name == "vpr") return Method::kVpr;
  if (name == "gpop") return Method::kGpop;
  if (name == "polymer") return Method::kPolymer;
  return std::nullopt;
}

std::span<const Kernel> all_kernels() {
  static constexpr std::array<Kernel, 5> kAll = {
      Kernel::kPageRank, Kernel::kPersonalized, Kernel::kBfs, Kernel::kWcc,
      Kernel::kSssp};
  return kAll;
}

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kPageRank:
      return "pagerank";
    case Kernel::kPersonalized:
      return "ppr";
    case Kernel::kBfs:
      return "bfs";
    case Kernel::kWcc:
      return "wcc";
    case Kernel::kSssp:
      return "sssp";
  }
  return "?";
}

std::optional<Kernel> kernel_from_name(std::string_view name) {
  for (Kernel k : all_kernels()) {
    if (name == kernel_name(k)) return k;  // exact round-trip
  }
  if (name == "pr") return Kernel::kPageRank;  // CLI-friendly alias
  return std::nullopt;
}

const char* reorder_name(engine::Reorder r) {
  switch (r) {
    case engine::Reorder::kNone:
      return "none";
    case engine::Reorder::kDegree:
      return "degree";
    case engine::Reorder::kHub:
      return "hub";
  }
  return "?";
}

std::optional<engine::Reorder> reorder_from_name(std::string_view name) {
  if (name == "none") return engine::Reorder::kNone;
  if (name == "degree") return engine::Reorder::kDegree;
  if (name == "hub") return engine::Reorder::kHub;
  return std::nullopt;
}

graph::Permutation make_reorder_permutation(engine::Reorder r,
                                            const graph::Graph& g) {
  switch (r) {
    case engine::Reorder::kNone:
      return graph::identity_permutation(g.num_vertices());
    case engine::Reorder::kDegree:
      return graph::degree_sort_permutation(g.out);
    case engine::Reorder::kHub:
      return graph::hub_cluster_permutation(g.out);
  }
  HIPA_CHECK(false, "unknown reorder mode");
  __builtin_unreachable();
}

unsigned default_threads(Method m, const sim::Topology& topo) {
  switch (m) {
    case Method::kHipa:
    case Method::kVpr:
    case Method::kPolymer:
      return topo.num_logical_cores();
    case Method::kPpr:
      // The paper finds p-PR peaks at 16 threads on 20 physical cores.
      return std::max(1u, topo.num_physical_cores() * 4 / 5);
    case Method::kGpop:
      return topo.num_physical_cores();
  }
  return 1;
}

std::uint64_t default_partition_bytes(Method m, unsigned scale_denom) {
  HIPA_CHECK(scale_denom >= 1);
  switch (m) {
    case Method::kHipa:
    case Method::kPpr:
      return std::max<std::uint64_t>(256 * 1024 / scale_denom, 256);
    case Method::kGpop:
      return std::max<std::uint64_t>(1024 * 1024 / scale_denom, 1024);
    case Method::kVpr:
    case Method::kPolymer:
      return 0;
  }
  return 0;
}

RunResult run_method_sim(Method m, const graph::Graph& g,
                         sim::SimMachine& machine,
                         const MethodParams& params) {
  engine::PrOptions ko;
  ko.damping = params.pr.damping;
  auto kr =
      run_kernel_sim<engine::PageRankKernel>(m, g, machine, ko, params);
  RunResult result;
  result.report = std::move(kr.report);
  result.ranks = std::move(kr.values);
  return result;
}

RunResult run_method_native(Method m, const graph::Graph& g,
                            const MethodParams& params) {
  engine::PrOptions ko;
  ko.damping = params.pr.damping;
  auto kr = run_kernel_native<engine::PageRankKernel>(m, g, ko, params);
  RunResult result;
  result.report = std::move(kr.report);
  result.ranks = std::move(kr.values);
  return result;
}

namespace {

/// Shared switch for the runtime-dispatched runners: pick the kernel's
/// option member off params and invoke the typed template.
template <class RunK>
engine::RunReport dispatch_kernel(const MethodParams& params, RunK&& run) {
  switch (params.kernel) {
    case Kernel::kPageRank: {
      engine::PrOptions ko;
      ko.damping = params.pr.damping;
      return run.template operator()<engine::PageRankKernel>(ko);
    }
    case Kernel::kPersonalized:
      return run.template operator()<engine::PprKernel>(params.personalized);
    case Kernel::kBfs:
      return run.template operator()<engine::BfsKernel>(params.bfs);
    case Kernel::kWcc:
      return run.template operator()<engine::WccKernel>(params.wcc);
    case Kernel::kSssp:
      return run.template operator()<engine::SsspKernel>(params.sssp);
  }
  HIPA_CHECK(false, "unknown kernel");
  __builtin_unreachable();
}

}  // namespace

engine::RunReport run_any_kernel_sim(Method m, const graph::Graph& g,
                                     sim::SimMachine& machine,
                                     const MethodParams& params) {
  return dispatch_kernel(
      params, [&]<class K>(const typename K::Options& ko) {
        return run_kernel_sim<K>(m, g, machine, ko, params).report;
      });
}

engine::RunReport run_any_kernel_native(Method m, const graph::Graph& g,
                                        const MethodParams& params) {
  return dispatch_kernel(params,
                         [&]<class K>(const typename K::Options& ko) {
                           return run_kernel_native<K>(m, g, ko, params)
                               .report;
                         });
}

}  // namespace hipa::algo
