#include "algos/spmv.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hipa::algo {

std::vector<rank_t> spmv_reference(const graph::Graph& g,
                                   std::span<const rank_t> x) {
  const vid_t n = g.num_vertices();
  HIPA_CHECK(x.size() == n, "vector length mismatch");
  std::vector<rank_t> y(n, 0.0f);
  for (vid_t v = 0; v < n; ++v) {
    rank_t sum = 0.0f;
    for (vid_t u : g.in.neighbors(v)) sum += x[u];
    y[v] = sum;
  }
  return y;
}

double linf_distance(std::span<const rank_t> a, std::span<const rank_t> b) {
  HIPA_CHECK(a.size() == b.size(), "vector length mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) -
                             static_cast<double>(b[i])));
  }
  return m;
}

}  // namespace hipa::algo
