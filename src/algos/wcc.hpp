// Weakly-connected components (a further §6-style generalization of
// the HiPa machinery beyond PageRank/SpMV/BFS).
#pragma once

#include <vector>

#include "engines/backend.hpp"
#include "engines/pcpm_engine.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"

namespace hipa::algo {

/// Serial union-find reference: labels[v] = smallest vertex id in v's
/// weakly-connected component.
[[nodiscard]] std::vector<vid_t> wcc_reference(const graph::Graph& g);

/// Number of distinct components in a label vector.
[[nodiscard]] std::size_t count_components(std::span<const vid_t> labels);

/// HiPa-partitioned WCC: symmetrizes the graph (weak connectivity) and
/// runs min-label propagation through the PCPM bins.
template <class Backend>
[[nodiscard]] std::vector<vid_t> wcc(const graph::Graph& g,
                                     const engine::PcpmOptions& opt,
                                     Backend& backend,
                                     unsigned* rounds_out = nullptr) {
  // Weak connectivity ignores direction: rebuild with reverse edges.
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (vid_t u : g.out.neighbors(v)) edges.push_back(Edge{v, u});
  }
  graph::BuildOptions bopts;
  bopts.symmetrize = true;
  bopts.remove_duplicates = true;
  const graph::Graph sym = graph::build_graph(g.num_vertices(), edges,
                                              bopts);

  engine::PcpmEngine<Backend> eng(sym, opt, backend);
  auto result = eng.run_wcc();
  if (rounds_out != nullptr) *rounds_out = result.rounds;
  return std::move(result.labels);
}

}  // namespace hipa::algo
