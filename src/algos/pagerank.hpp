// Algorithm front door: serial reference oracles, the five paper
// methodologies and five kernels behind one runner API, and
// result-comparison helpers.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/timer.hpp"
#include "engines/backend.hpp"
#include "engines/run.hpp"
#include "graph/csr.hpp"
#include "graph/reorder.hpp"
#include "runtime/affinity.hpp"
#include "sim/machine.hpp"

namespace hipa::algo {

/// The unified run surface (report + final ranks), re-exported so
/// facade users never need to spell the engine namespace.
using RunResult = engine::RunResult;

/// Serial textbook PageRank (paper Eq. 1), the correctness oracle for
/// every engine.
[[nodiscard]] std::vector<rank_t> pagerank_reference(const graph::Graph& g,
                                                     unsigned iterations,
                                                     rank_t damping = 0.85f);

/// Serial personalized PageRank: restart mass split uniformly over the
/// seed set (uniform over all vertices when empty — engine semantics).
[[nodiscard]] std::vector<rank_t> ppr_reference(const graph::Graph& g,
                                                unsigned iterations,
                                                rank_t damping,
                                                std::span<const vid_t> seeds);

/// Sum of |a[i] - b[i]|.
[[nodiscard]] double l1_distance(std::span<const rank_t> a,
                                 std::span<const rank_t> b);

/// Indices of the k largest ranks, descending (ties by smaller id).
[[nodiscard]] std::vector<vid_t> top_k(std::span<const rank_t> ranks,
                                       std::size_t k);

/// The five methodologies evaluated in the paper — one enum, shared
/// with the engine facade (engine::run<K> takes it via EngineParams).
using Method = engine::EngineKind;

[[nodiscard]] std::span<const Method> all_methods();
[[nodiscard]] const char* method_name(Method m);

/// Inverse of method_name (exact, case-sensitive round-trip:
/// "HiPa", "p-PR", "v-PR", "GPOP", "Polymer") plus the lowercase
/// aliases used on bench command lines ("hipa", "ppr", "vpr", "gpop",
/// "polymer"). Returns nullopt for anything else.
[[nodiscard]] std::optional<Method> method_from_name(std::string_view name);

/// The five kernels behind the run<K>() API (engines/kernels.hpp),
/// as a runtime value for CLI flags and option plumbing.
enum class Kernel { kPageRank, kPersonalized, kBfs, kWcc, kSssp };

[[nodiscard]] std::span<const Kernel> all_kernels();

/// Kernel names for bench flags and reports: "pagerank", "ppr", "bfs",
/// "wcc", "sssp" (exact round-trip through kernel_from_name).
[[nodiscard]] const char* kernel_name(Kernel k);
[[nodiscard]] std::optional<Kernel> kernel_from_name(std::string_view name);

/// Reorder-mode names for bench flags and reports: "none", "degree",
/// "hub" (exact round-trip through reorder_from_name).
[[nodiscard]] const char* reorder_name(engine::Reorder r);
[[nodiscard]] std::optional<engine::Reorder> reorder_from_name(
    std::string_view name);

/// The permutation the runners apply for a reorder mode (identity for
/// kNone). Exposed so tests and benches can reproduce the facade's
/// exact permute → run → inverse-permute pipeline.
[[nodiscard]] graph::Permutation make_reorder_permutation(
    engine::Reorder r, const graph::Graph& g);

/// Parameters common to every runner. Zeros mean "paper default for
/// this methodology on this machine".
struct MethodParams {
  unsigned threads = 0;
  std::uint64_t partition_bytes = 0;
  /// Divide default partition sizes by this (must track the machine's
  /// cache scaling; see DatasetInfo::recommended_scale).
  unsigned scale_denom = 1;
  /// The engine-level run options (iterations, damping, tolerance,
  /// telemetry, hw counters, trace path, placement audit) — ONE source
  /// of truth shared with every engine's run()/run_pagerank().
  engine::PageRankOptions pr{};
  /// Which kernel the runtime-dispatched runners execute
  /// (run_any_kernel_{sim,native}; the typed run_kernel_* templates
  /// name their kernel statically and ignore this field).
  Kernel kernel = Kernel::kPageRank;
  /// Per-kernel options for the runtime-dispatched path, one member
  /// per kernel (engine namespace owns the structs; PageRank's damping
  /// rides in `pr`).
  engine::PprOptions personalized{};
  engine::BfsOptions bfs{};
  engine::WccOptions wcc{};
  engine::SsspOptions sssp{};
};

/// Paper-default thread count of a methodology on a topology
/// (HiPa/v-PR/Polymer use all logical cores; p-PR and GPOP stay at or
/// below the physical core count — paper §4.1).
[[nodiscard]] unsigned default_threads(Method m, const sim::Topology& topo);

/// Paper-default partition size (HiPa/p-PR 256 KB, GPOP 1 MB) divided
/// by scale_denom; 0 for vertex-centric methods.
[[nodiscard]] std::uint64_t default_partition_bytes(Method m,
                                                    unsigned scale_denom);

/// Run methodology `m` on the simulated machine. Preprocessing and
/// iteration costs both land in the machine's cycle counter; the
/// returned report carries this run's stats delta. The final ranks
/// ride along in the returned RunResult. Thin wrapper over
/// run_kernel_sim<engine::PageRankKernel>.
[[nodiscard]] RunResult run_method_sim(Method m, const graph::Graph& g,
                                       sim::SimMachine& machine,
                                       const MethodParams& params = {});

/// Run methodology `m` natively (real threads, wall-clock timing).
/// Thin wrapper over run_kernel_native<engine::PageRankKernel>.
[[nodiscard]] RunResult run_method_native(Method m, const graph::Graph& g,
                                          const MethodParams& params = {});

/// Runtime-dispatched kernel runners for CLI-driven harnesses: switch
/// on params.kernel, pull that kernel's options member, and return the
/// report (values stay inside — use the typed templates below when the
/// result vector matters).
[[nodiscard]] engine::RunReport run_any_kernel_sim(
    Method m, const graph::Graph& g, sim::SimMachine& machine,
    const MethodParams& params = {});
[[nodiscard]] engine::RunReport run_any_kernel_native(
    Method m, const graph::Graph& g, const MethodParams& params = {});

namespace detail {

/// The runners' reorder pipeline, kernel-generic: permute the graph's
/// vertex ids (remapping id-valued kernel options — BFS/SSSP sources,
/// PPR seeds), run the engine on the permuted CSR with the knob
/// cleared, inverse-permute the values back to original positions, and
/// let the kernel remap id-valued *results* (WCC labels). Every engine
/// is deterministic for a fixed (graph, options), so any manual
/// permute/run/inverse-permute with the same permutation reproduces
/// this bitwise. `charge_wall_prep` adds the permutation's wall-clock
/// cost to preprocessing_seconds (native runs only — simulated reports
/// count modeled cycles, not host time).
template <class K, class RunFn>
engine::KernelResult<K> run_kernel_with_reorder(const graph::Graph& g,
                                                typename K::Options ko,
                                                const MethodParams& params,
                                                bool charge_wall_prep,
                                                RunFn&& run) {
  if (params.pr.reorder == engine::Reorder::kNone) {
    return run(g, ko, params);
  }
  Timer prep_timer;
  const graph::Permutation perm =
      make_reorder_permutation(params.pr.reorder, g);
  const graph::Graph permuted = graph::apply_permutation(g, perm);
  const double prep_seconds = prep_timer.seconds();
  MethodParams inner = params;
  inner.pr.reorder = engine::Reorder::kNone;
  K::remap_options(ko, perm);
  engine::KernelResult<K> result = run(permuted, ko, inner);
  std::vector<typename K::Value> unpermuted(result.values.size());
  for (vid_t v = 0; v < static_cast<vid_t>(unpermuted.size()); ++v) {
    unpermuted[v] = result.values[perm[v]];
  }
  std::vector<vid_t> old_of_new(perm.size());
  for (vid_t v = 0; v < static_cast<vid_t>(perm.size()); ++v) {
    old_of_new[perm[v]] = v;
  }
  K::remap_values(unpermuted, old_of_new);
  result.values = std::move(unpermuted);
  if (charge_wall_prep) {
    result.report.preprocessing_seconds += prep_seconds;
  }
  return result;
}

}  // namespace detail

/// Run kernel K through methodology `m` on the simulated machine.
template <class K>
[[nodiscard]] engine::KernelResult<K> run_kernel_sim(
    Method m, const graph::Graph& g, sim::SimMachine& machine,
    typename K::Options ko = {}, const MethodParams& params = {}) {
  return detail::run_kernel_with_reorder<K>(
      g, std::move(ko), params, /*charge_wall_prep=*/false,
      [&](const graph::Graph& rg, const typename K::Options& rko,
          const MethodParams& p) {
        engine::SimBackend backend(machine);
        engine::EngineParams ep;
        ep.engine = m;
        ep.threads = p.threads != 0
                         ? p.threads
                         : default_threads(m, machine.topology());
        ep.partition_bytes =
            p.partition_bytes != 0
                ? p.partition_bytes
                : default_partition_bytes(m, p.scale_denom);
        ep.num_nodes = machine.topology().num_nodes;
        return engine::run<K>(rg, backend, rko, p.pr, ep);
      });
}

/// Run kernel K through methodology `m` natively.
template <class K>
[[nodiscard]] engine::KernelResult<K> run_kernel_native(
    Method m, const graph::Graph& g, typename K::Options ko = {},
    const MethodParams& params = {}) {
  return detail::run_kernel_with_reorder<K>(
      g, std::move(ko), params, /*charge_wall_prep=*/true,
      [&](const graph::Graph& rg, const typename K::Options& rko,
          const MethodParams& p) {
        engine::NativeBackend backend;
        engine::EngineParams ep;
        ep.engine = m;
        ep.threads =
            p.threads != 0 ? p.threads : runtime::available_cpus();
        ep.partition_bytes = p.partition_bytes;
        if (ep.partition_bytes == 0) {
          ep.partition_bytes = default_partition_bytes(m, p.scale_denom);
          if (ep.partition_bytes == 0) {
            ep.partition_bytes = 256 * 1024;  // vertex-centric: unused
          }
        }
        // Native runs on this host: treat it as one NUMA node.
        ep.num_nodes = 1;
        return engine::run<K>(rg, backend, rko, p.pr, ep);
      });
}

}  // namespace hipa::algo
