// PageRank front door: reference implementation, the five paper
// methodologies behind one runner API, and result-comparison helpers.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "engines/backend.hpp"
#include "engines/pcpm_engine.hpp"
#include "graph/csr.hpp"
#include "graph/reorder.hpp"
#include "sim/machine.hpp"

namespace hipa::algo {

/// The unified run surface (report + final ranks), re-exported so
/// facade users never need to spell the engine namespace.
using RunResult = engine::RunResult;

/// Serial textbook PageRank (paper Eq. 1), the correctness oracle for
/// every engine.
[[nodiscard]] std::vector<rank_t> pagerank_reference(const graph::Graph& g,
                                                     unsigned iterations,
                                                     rank_t damping = 0.85f);

/// Sum of |a[i] - b[i]|.
[[nodiscard]] double l1_distance(std::span<const rank_t> a,
                                 std::span<const rank_t> b);

/// Indices of the k largest ranks, descending (ties by smaller id).
[[nodiscard]] std::vector<vid_t> top_k(std::span<const rank_t> ranks,
                                       std::size_t k);

/// The five methodologies evaluated in the paper.
enum class Method { kHipa, kPpr, kVpr, kGpop, kPolymer };

[[nodiscard]] std::span<const Method> all_methods();
[[nodiscard]] const char* method_name(Method m);

/// Inverse of method_name (exact, case-sensitive round-trip:
/// "HiPa", "p-PR", "v-PR", "GPOP", "Polymer") plus the lowercase
/// aliases used on bench command lines ("hipa", "ppr", "vpr", "gpop",
/// "polymer"). Returns nullopt for anything else.
[[nodiscard]] std::optional<Method> method_from_name(std::string_view name);

/// Reorder-mode names for bench flags and reports: "none", "degree",
/// "hub" (exact round-trip through reorder_from_name).
[[nodiscard]] const char* reorder_name(engine::Reorder r);
[[nodiscard]] std::optional<engine::Reorder> reorder_from_name(
    std::string_view name);

/// The permutation the runners apply for a reorder mode (identity for
/// kNone). Exposed so tests and benches can reproduce the facade's
/// exact permute → run → inverse-permute pipeline.
[[nodiscard]] graph::Permutation make_reorder_permutation(
    engine::Reorder r, const graph::Graph& g);

/// Parameters common to every runner. Zeros mean "paper default for
/// this methodology on this machine".
struct MethodParams {
  unsigned threads = 0;
  std::uint64_t partition_bytes = 0;
  /// Divide default partition sizes by this (must track the machine's
  /// cache scaling; see DatasetInfo::recommended_scale).
  unsigned scale_denom = 1;
  /// The engine-level run options (iterations, damping, tolerance,
  /// telemetry, hw counters, trace path, placement audit) — ONE source
  /// of truth shared with every engine's run()/run_pagerank(). The
  /// historic flat iterations/damping duplicates (deprecated in the
  /// previous PR) are gone; set `pr.iterations` / `pr.damping`.
  engine::PageRankOptions pr{};
};

/// Paper-default thread count of a methodology on a topology
/// (HiPa/v-PR/Polymer use all logical cores; p-PR and GPOP stay at or
/// below the physical core count — paper §4.1).
[[nodiscard]] unsigned default_threads(Method m, const sim::Topology& topo);

/// Paper-default partition size (HiPa/p-PR 256 KB, GPOP 1 MB) divided
/// by scale_denom; 0 for vertex-centric methods.
[[nodiscard]] std::uint64_t default_partition_bytes(Method m,
                                                    unsigned scale_denom);

/// Run methodology `m` on the simulated machine. Preprocessing and
/// iteration costs both land in the machine's cycle counter; the
/// returned report carries this run's stats delta. The final ranks
/// ride along in the returned RunResult (the historic
/// `std::vector<rank_t>*` out-param is gone).
[[nodiscard]] RunResult run_method_sim(Method m, const graph::Graph& g,
                                       sim::SimMachine& machine,
                                       const MethodParams& params = {});

/// Run methodology `m` natively (real threads, wall-clock timing).
[[nodiscard]] RunResult run_method_native(Method m, const graph::Graph& g,
                                          const MethodParams& params = {});

}  // namespace hipa::algo
