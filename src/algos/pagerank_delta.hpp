// PageRank-Delta: incremental PageRank that only propagates rank
// *changes* above a threshold (paper §6's second extension target).
//
// Vertices whose accumulated delta falls below `epsilon / |V|` stop
// propagating; the computation converges when the active set drains.
// The engine applies the HiPa methodology: vertex ranges are split into
// cache-sized partitions grouped per thread (hierarchical plan), the
// team is persistent and node-bound, and attribute arrays are placed
// per node — demonstrating the paper's claim that the partitioning
// generalizes beyond plain PageRank.
#pragma once

#include <vector>

#include "engines/backend.hpp"
#include "graph/csr.hpp"
#include "partition/plan.hpp"

namespace hipa::algo {

struct DeltaOptions {
  unsigned max_iterations = 100;
  rank_t damping = 0.85f;
  /// Convergence knob: a vertex propagates while |delta| >= epsilon/|V|.
  double epsilon = 1e-2;
  unsigned threads = 4;
  unsigned num_nodes = 1;
  std::uint64_t partition_bytes = 256 * 1024;
};

struct DeltaResult {
  std::vector<rank_t> ranks;
  unsigned iterations = 0;       ///< iterations until the frontier drained
  std::uint64_t total_pushes = 0;  ///< edge propagations actually done
  engine::RunReport report;
};

/// Serial reference (same semantics, deterministic).
[[nodiscard]] DeltaResult pagerank_delta_reference(const graph::Graph& g,
                                                   const DeltaOptions& opt);

/// HiPa-style parallel PageRank-Delta on either backend.
template <class Backend>
[[nodiscard]] DeltaResult pagerank_delta(const graph::Graph& g,
                                         const DeltaOptions& opt,
                                         Backend& backend);

// ---- implementation ---------------------------------------------------------

template <class Backend>
DeltaResult pagerank_delta(const graph::Graph& g, const DeltaOptions& opt,
                           Backend& backend) {
  using Mem = typename Backend::Mem;
  const vid_t n = g.num_vertices();
  HIPA_CHECK(n > 0, "empty graph");

  // HiPa plan: cache-sized partitions grouped per thread, per node.
  part::PlanConfig cfg;
  cfg.partition_bytes = opt.partition_bytes;
  cfg.num_nodes = std::max(1u, std::min(opt.num_nodes, opt.threads));
  cfg.threads_per_node.assign(cfg.num_nodes, 0);
  for (unsigned t = 0; t < opt.threads; ++t) {
    ++cfg.threads_per_node[t % cfg.num_nodes];
  }
  const part::HierarchicalPlan plan =
      part::build_hierarchical_plan(g.out, cfg);

  // Attributes: rank, residual (pending delta), reciprocal out-degree
  // (0 for sinks — shared sink semantics from graph::inverse_degrees,
  // turning the per-push guarded divide into one multiply). Residual
  // updates push through atomics (cross-partition writes).
  AlignedBuffer<rank_t> rank(n);
  AlignedBuffer<rank_t> residual(n);
  AlignedBuffer<rank_t> inv_deg = graph::inverse_degrees<rank_t>(g.out);
  for (unsigned node = 0; node < plan.num_nodes; ++node) {
    const VertexRange vr = plan.node_vertex_range(node);
    backend.register_buffer(rank.data() + vr.begin,
                            vr.size() * sizeof(rank_t),
                            engine::DataPlacement::kNode, node);
    backend.register_buffer(residual.data() + vr.begin,
                            vr.size() * sizeof(rank_t),
                            engine::DataPlacement::kNode, node);
    backend.register_buffer(inv_deg.data() + vr.begin,
                            vr.size() * sizeof(rank_t),
                            engine::DataPlacement::kNode, node);
  }

  engine::ThreadTeamSpec spec;
  spec.num_threads = opt.threads;
  spec.persistent = true;
  spec.binding = engine::ThreadTeamSpec::Binding::kNodeBlocked;
  spec.threads_per_node = plan.threads_per_node;
  spec.threads_per_node.resize(
      std::max<std::size_t>(spec.threads_per_node.size(), opt.num_nodes), 0);

  const auto base =
      static_cast<rank_t>((1.0 - opt.damping) / static_cast<double>(n));
  const auto threshold =
      static_cast<rank_t>(opt.epsilon / static_cast<double>(n));

  DeltaResult result;
  std::vector<std::uint64_t> active_per_thread(opt.threads, 0);
  std::vector<std::uint64_t> pushes_per_thread(opt.threads, 0);

  const double t0 = backend.now_seconds();
  backend.start_team(spec);
  // Initialization: rank accumulates from zero; every vertex starts
  // with its teleport mass pending in the residual.
  backend.phase([&](unsigned t, Mem& mem) {
    const VertexRange r = plan.table.vertices_of_thread(t);
    mem.stream_write(rank.data() + r.begin, r.size());
    mem.stream_write(residual.data() + r.begin, r.size());
    for (vid_t v = r.begin; v < r.end; ++v) {
      rank[v] = 0.0f;
      residual[v] = base;
    }
    mem.work(r.size());
  });

  unsigned iter = 0;
  for (; iter < opt.max_iterations; ++iter) {
    std::fill(active_per_thread.begin(), active_per_thread.end(), 0);
    // Push phase: drain each active vertex's residual into its
    // out-neighbors' residuals (atomic: the target may belong to
    // another thread's partitions).
    backend.phase([&](unsigned t, Mem& mem) {
      const auto [pb, pe] = plan.table.partitions_of_thread(t);
      std::uint64_t active = 0;
      std::uint64_t pushes = 0;
      for (std::uint32_t p = pb; p < pe; ++p) {
        const VertexRange r = plan.parts.range(p);
        mem.stream_read(residual.data() + r.begin, r.size());
        for (vid_t v = r.begin; v < r.end; ++v) {
          const rank_t res = residual[v];
          if (res < threshold && res > -threshold) continue;
          ++active;
          residual[v] = 0.0f;
          mem.store(rank.data() + v, rank[v] + res);
          if (inv_deg[v] == 0.0f) continue;  // sink: nothing to push
          const rank_t push = opt.damping * res * inv_deg[v];
          const auto neigh = g.out.neighbors(v);
          mem.stream_read(neigh.data(), neigh.size());
          for (vid_t u : neigh) {
            mem.atomic_add(residual.data() + u, push);
          }
          pushes += neigh.size();
          mem.work(neigh.size() + 4);
        }
      }
      active_per_thread[t] = active;
      pushes_per_thread[t] = pushes;
    });
    std::uint64_t active_total = 0;
    for (unsigned t = 0; t < opt.threads; ++t) {
      active_total += active_per_thread[t];
      result.total_pushes += pushes_per_thread[t];
    }
    if (active_total == 0) break;
  }
  backend.end_team();

  result.iterations = iter;
  result.report.seconds = backend.now_seconds() - t0;
  result.report.iterations = iter;
  result.ranks.assign(rank.begin(), rank.end());
  return result;
}

}  // namespace hipa::algo
