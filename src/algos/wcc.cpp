#include "algos/wcc.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace hipa::algo {

namespace {

/// Path-halving union-find.
class UnionFind {
 public:
  explicit UnionFind(vid_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), vid_t{0});
  }

  vid_t find(vid_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  void unite(vid_t a, vid_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Smaller id becomes the root so labels are canonical minima.
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<vid_t> parent_;
};

}  // namespace

std::vector<vid_t> wcc_reference(const graph::Graph& g) {
  const vid_t n = g.num_vertices();
  UnionFind uf(n);
  for (vid_t v = 0; v < n; ++v) {
    for (vid_t u : g.out.neighbors(v)) uf.unite(v, u);
  }
  std::vector<vid_t> labels(n);
  for (vid_t v = 0; v < n; ++v) labels[v] = uf.find(v);
  return labels;
}

std::size_t count_components(std::span<const vid_t> labels) {
  std::unordered_set<vid_t> roots(labels.begin(), labels.end());
  return roots.size();
}

}  // namespace hipa::algo
