#include "algos/bfs.hpp"

#include <queue>

namespace hipa::algo {

BfsResult bfs_reference(const graph::Graph& g, vid_t source) {
  const vid_t n = g.num_vertices();
  HIPA_CHECK(source < n, "source out of range");
  BfsResult result;
  result.distance.assign(n, kUnreached);
  result.distance[source] = 0;
  result.reached = 1;
  std::queue<vid_t> queue;
  queue.push(source);
  while (!queue.empty()) {
    const vid_t v = queue.front();
    queue.pop();
    for (vid_t u : g.out.neighbors(v)) {
      if (result.distance[u] == kUnreached) {
        result.distance[u] = result.distance[v] + 1;
        result.levels = std::max(result.levels, result.distance[u]);
        ++result.reached;
        queue.push(u);
      }
    }
  }
  return result;
}

}  // namespace hipa::algo
