// Sparse matrix-vector multiplication over the graph adjacency matrix
// (paper §1: "the computation of PageRank can be interpreted as
// iterative SpMV"; §6 lists SpMV as the first extension target).
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace hipa::algo {

/// Serial reference: y[v] = sum of x[u] over edges u -> v.
[[nodiscard]] std::vector<rank_t> spmv_reference(const graph::Graph& g,
                                                 std::span<const rank_t> x);

/// Largest |a[i] - b[i]|.
[[nodiscard]] double linf_distance(std::span<const rank_t> a,
                                   std::span<const rank_t> b);

}  // namespace hipa::algo
