// Lightweight graph reordering (paper Section 2.1: temporal locality
// via concentrating hot vertices, refs [9], [44]).
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace hipa::graph {

/// perm[v] = new id of old vertex v.
using Permutation = std::vector<vid_t>;

/// Identity permutation of size n.
[[nodiscard]] Permutation identity_permutation(vid_t n);

/// Degree-descending order: hottest (highest out-degree) vertices get
/// the smallest ids. Stable, so equal-degree vertices keep their
/// relative order.
[[nodiscard]] Permutation degree_sort_permutation(const CsrGraph& out);

/// Hub clustering (Faldu et al., paper ref [9]): vertices with degree
/// above the average are packed to the front preserving their relative
/// order; cold vertices follow, also in original order.
[[nodiscard]] Permutation hub_cluster_permutation(const CsrGraph& out);

/// Rebuild a graph under a permutation (both directions).
[[nodiscard]] Graph apply_permutation(const Graph& g,
                                      const Permutation& perm);

/// True iff perm is a bijection on [0, n).
[[nodiscard]] bool is_valid_permutation(const Permutation& perm);

}  // namespace hipa::graph
