#include "graph/generators.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"

namespace hipa::graph {

namespace {

/// Feistel-like deterministic permutation of [0, 2^bits).
vid_t scramble(vid_t v, unsigned bits, std::uint64_t seed) {
  const vid_t mask = (bits >= 32) ? ~vid_t{0} : ((vid_t{1} << bits) - 1);
  std::uint64_t x = v;
  // Two rounds of an invertible xorshift-multiply within the mask.
  for (int round = 0; round < 2; ++round) {
    x = (x * 0x9e3779b9u + seed + static_cast<std::uint64_t>(round)) & mask;
    x ^= x >> (bits / 2 + 1);
    x &= mask;
  }
  // Invertibility is not required — only determinism and rough
  // uniformity: collisions merely merge two vertices' edge slots.
  return static_cast<vid_t>(x);
}

}  // namespace

std::vector<Edge> generate_rmat(const RmatParams& p) {
  HIPA_CHECK(p.scale >= 1 && p.scale <= 30, "rmat scale out of range");
  const double d = 1.0 - p.a - p.b - p.c;
  HIPA_CHECK(d > 0.0 && p.a > 0 && p.b >= 0 && p.c >= 0,
             "rmat probabilities must be positive and sum below 1");

  const vid_t n = vid_t{1} << p.scale;
  const eid_t m = static_cast<eid_t>(n) * p.edge_factor;
  std::vector<Edge> edges;
  edges.reserve(m);

  Xoshiro256 rng(p.seed);
  const double ab = p.a + p.b;
  const double a_frac = p.a / ab;            // P(left | top)
  const double c_frac = p.c / (p.c + d);     // P(left | bottom)

  for (eid_t i = 0; i < m; ++i) {
    vid_t src = 0;
    vid_t dst = 0;
    for (unsigned bit = 0; bit < p.scale; ++bit) {
      const double r1 = rng.uniform();
      const double r2 = rng.uniform();
      const bool bottom = r1 > ab;
      const bool right = bottom ? (r2 > c_frac) : (r2 > a_frac);
      src = (src << 1) | static_cast<vid_t>(bottom);
      dst = (dst << 1) | static_cast<vid_t>(right);
    }
    if (p.scramble_ids) {
      src = scramble(src, p.scale, p.seed ^ 0xabcdULL);
      dst = scramble(dst, p.scale, p.seed ^ 0xabcdULL);
    }
    edges.push_back(Edge{src, dst});
  }
  return edges;
}

std::vector<Edge> generate_erdos_renyi(vid_t num_vertices, eid_t num_edges,
                                       std::uint64_t seed) {
  HIPA_CHECK(num_vertices > 0);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  Xoshiro256 rng(seed);
  for (eid_t i = 0; i < num_edges; ++i) {
    edges.push_back(Edge{static_cast<vid_t>(rng.bounded(num_vertices)),
                         static_cast<vid_t>(rng.bounded(num_vertices))});
  }
  return edges;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double exponent)
    : n_(n), exponent_(exponent) {
  HIPA_CHECK(n >= 1 && exponent > 0.0 && exponent != 1.0,
             "Zipf needs n>=1 and a positive exponent != 1");
  h_x1_ = h_integral(1.5) - 1.0;
  h_n_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfSampler::h_integral(double x) const {
  // ∫ t^-e dt = x^(1-e) / (1-e)   (negative for e > 1, monotone rising)
  return std::exp((1.0 - exponent_) * std::log(x)) / (1.0 - exponent_);
}

double ZipfSampler::h(double x) const {
  return std::exp(-exponent_ * std::log(x));
}

double ZipfSampler::h_integral_inverse(double u) const {
  return std::exp(std::log((1.0 - exponent_) * u) / (1.0 - exponent_));
}

std::uint64_t ZipfSampler::sample(Xoshiro256& rng) const {
  // Rejection-inversion sampling (Hörmann–Derflinger / Jain–Chlamtac,
  // as used by Apache commons-math ZipfRejectionInversionSampler).
  for (;;) {
    const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
    const double x = h_integral_inverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    if (k - x <= s_ || u >= h_integral(k + 0.5) - h(k)) {
      return static_cast<std::uint64_t>(k) - 1;  // 0-based rank
    }
  }
}

std::vector<Edge> generate_zipf(const ZipfParams& p) {
  HIPA_CHECK(p.num_vertices >= 2);
  std::vector<Edge> edges;
  edges.reserve(p.num_edges);
  Xoshiro256 rng(p.seed);
  ZipfSampler target_sampler(p.num_vertices, p.exponent);
  // Popularity ranks map to vertex ids through independent scrambles so
  // hot vertices scatter over the id space (as in crawled datasets) and
  // in-popularity does not correlate with out-popularity.
  SplitMix64 salt(p.seed ^ 0x5eedULL);
  const std::uint64_t dst_mul = salt.next() | 1ULL;
  const std::uint64_t src_mul = salt.next() | 1ULL;

  if (p.src_exponent > 0.0) {
    ZipfSampler source_sampler(p.num_vertices, p.src_exponent);
    for (eid_t i = 0; i < p.num_edges; ++i) {
      const auto dst = static_cast<vid_t>(
          (target_sampler.sample(rng) * dst_mul) % p.num_vertices);
      const auto src = static_cast<vid_t>(
          (source_sampler.sample(rng) * src_mul) % p.num_vertices);
      edges.push_back(Edge{src, dst});
    }
  } else {
    for (eid_t i = 0; i < p.num_edges; ++i) {
      const auto dst = static_cast<vid_t>(
          (target_sampler.sample(rng) * dst_mul) % p.num_vertices);
      const auto src = static_cast<vid_t>(rng.bounded(p.num_vertices));
      edges.push_back(Edge{src, dst});
    }
  }
  return edges;
}

std::vector<Edge> generate_grid_torus(vid_t side) {
  HIPA_CHECK(side >= 2);
  const vid_t n = side * side;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 4);
  for (vid_t r = 0; r < side; ++r) {
    for (vid_t c = 0; c < side; ++c) {
      const vid_t v = r * side + c;
      const vid_t right = r * side + (c + 1) % side;
      const vid_t left = r * side + (c + side - 1) % side;
      const vid_t down = ((r + 1) % side) * side + c;
      const vid_t up = ((r + side - 1) % side) * side + c;
      edges.push_back({v, right});
      edges.push_back({v, left});
      edges.push_back({v, down});
      edges.push_back({v, up});
    }
  }
  return edges;
}

}  // namespace hipa::graph
