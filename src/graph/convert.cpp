#include "graph/convert.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/error.hpp"

namespace hipa::graph {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::string spill_path(const std::string& out_path, std::size_t seg) {
  return out_path + ".seg" + std::to_string(seg) + ".tmp";
}

/// Removes every spill file on scope exit — normal or error path — so
/// a failed conversion never litters the output directory.
struct SpillCleaner {
  std::string out_path;
  std::size_t count = 0;
  ~SpillCleaner() {
    for (std::size_t s = 0; s < count; ++s) {
      std::remove(spill_path(out_path, s).c_str());
    }
  }
};

}  // namespace

ConvertStats convert_edge_list_to_segmented(const std::string& edge_list_path,
                                            const std::string& out_path,
                                            const ConvertOptions& opt) {
  // Pass 1: degree counting. O(V) resident, edges never kept.
  std::vector<std::uint64_t> in_degrees;
  std::vector<std::uint32_t> out_degrees;
  const EdgeListInfo info = stream_edge_list(
      edge_list_path,
      [&](std::span<const Edge> chunk) {
        for (const Edge& e : chunk) {
          const vid_t top = std::max(e.src, e.dst);
          if (top >= in_degrees.size()) {
            in_degrees.resize(top + 1, 0);
            out_degrees.resize(top + 1, 0);
          }
          ++in_degrees[e.dst];
          ++out_degrees[e.src];
        }
      },
      opt.chunk_edges);
  HIPA_CHECK(info.num_edges > 0,
             "'" << edge_list_path << "' contains no edges");

  const std::vector<SegmentPlan> plans =
      plan_segments(in_degrees, opt.target_segment_bytes);
  in_degrees.clear();
  in_degrees.shrink_to_fit();

  // Pass 2: spill each edge to its destination segment's temp file.
  // One buffered stream per segment; stdio's buffers keep this a
  // sequential append workload.
  SpillCleaner cleaner{out_path, plans.size()};
  {
    std::vector<FilePtr> spills;
    spills.reserve(plans.size());
    std::vector<vid_t> seg_begin;
    seg_begin.reserve(plans.size());
    for (std::size_t s = 0; s < plans.size(); ++s) {
      const std::string p = spill_path(out_path, s);
      FilePtr f(std::fopen(p.c_str(), "wb"));
      HIPA_CHECK(f != nullptr, "cannot open spill file '" << p << "'");
      spills.push_back(std::move(f));
      seg_begin.push_back(plans[s].range.begin);
    }
    stream_edge_list(
        edge_list_path,
        [&](std::span<const Edge> chunk) {
          for (const Edge& e : chunk) {
            const auto it = std::upper_bound(seg_begin.begin(),
                                             seg_begin.end(), e.dst);
            const auto s =
                static_cast<std::size_t>(it - seg_begin.begin()) - 1;
            HIPA_CHECK(std::fwrite(&e, sizeof e, 1, spills[s].get()) == 1,
                       "short write to spill file for segment " << s);
          }
        },
        opt.chunk_edges);
    for (std::size_t s = 0; s < plans.size(); ++s) {
      HIPA_CHECK(std::fflush(spills[s].get()) == 0 &&
                     std::ferror(spills[s].get()) == 0,
                 "write error on spill file for segment " << s);
    }
  }

  // Pass 3: per segment, sort the spilled records by (dst, src) —
  // exactly transpose order, each destination's sources ascending —
  // and stream the payload out. Peak memory: one segment's edges.
  ConvertStats stats;
  stats.num_vertices = info.num_vertices;
  stats.num_edges = info.num_edges;
  stats.num_segments = static_cast<unsigned>(plans.size());
  SegmentedCsrWriter writer(out_path, info.num_vertices, info.num_edges,
                            plans, out_degrees);
  std::vector<Edge> records;
  std::vector<eid_t> local_offsets;
  std::vector<vid_t> sources;
  for (std::size_t s = 0; s < plans.size(); ++s) {
    const SegmentPlan& plan = plans[s];
    const std::string p = spill_path(out_path, s);
    records.resize(plan.edges);
    {
      FilePtr f(std::fopen(p.c_str(), "rb"));
      HIPA_CHECK(f != nullptr, "cannot reopen spill file '" << p << "'");
      HIPA_CHECK(std::fread(records.data(), sizeof(Edge), plan.edges,
                            f.get()) == plan.edges,
                 "spill file '" << p << "' is shorter than planned ("
                                << plan.edges << " edges)");
    }
    std::remove(p.c_str());
    std::sort(records.begin(), records.end(),
              [](const Edge& a, const Edge& b) {
                return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
              });
    const vid_t nv = plan.range.size();
    local_offsets.assign(static_cast<std::size_t>(nv) + 1, 0);
    sources.resize(plan.edges);
    for (std::size_t i = 0; i < records.size(); ++i) {
      ++local_offsets[records[i].dst - plan.range.begin + 1];
      sources[i] = records[i].src;
    }
    for (vid_t v = 0; v < nv; ++v) {
      local_offsets[v + 1] += local_offsets[v];
    }
    writer.write_segment(local_offsets, sources);
    stats.max_segment_payload_bytes =
        std::max(stats.max_segment_payload_bytes,
                 segment_payload_bytes(nv, plan.edges));
  }
  writer.finish();
  return stats;
}

}  // namespace hipa::graph
