// Offline sharder: convert a raw text edge list into the segmented
// HCSR v3 container with memory bounded by O(V + largest segment),
// never the full edge set. Backs the `hipa-convert` CLI; exposed as a
// library so tests can drive it directly.
#pragma once

#include <cstdint>
#include <string>

#include "graph/io.hpp"

namespace hipa::graph {

struct ConvertOptions {
  /// Target payload bytes per segment (the resident unit of the
  /// out-of-core engine). 64 MiB default keeps two staging slots well
  /// under typical budgets.
  std::size_t target_segment_bytes = std::size_t{64} << 20;
  /// Edges parsed per streaming chunk (peak parse memory).
  std::size_t chunk_edges = std::size_t{1} << 20;
};

struct ConvertStats {
  vid_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  unsigned num_segments = 0;
  std::size_t max_segment_payload_bytes = 0;
};

/// Shard `edge_list_path` into a segmented v3 file at `out_path`.
///
/// Three bounded-memory passes:
///   1. stream the edge list to count V and per-vertex in/out degrees;
///   2. stream again, spilling each edge to its segment's temp file
///      (`out_path` + ".seg<i>.tmp", removed on success);
///   3. per segment, read the spill back, sort by (dst, src) — the
///      order CsrGraph::transpose produces — and append the payload.
///
/// The result is byte-identical to save_segmented_csr of the same
/// graph built in memory; ranks computed from it match in-core runs
/// bitwise.
ConvertStats convert_edge_list_to_segmented(const std::string& edge_list_path,
                                            const std::string& out_path,
                                            const ConvertOptions& opt = {});

}  // namespace hipa::graph
