#include "graph/csr.hpp"

namespace hipa::graph {

CsrGraph::CsrGraph(AlignedBuffer<eid_t> offsets, AlignedBuffer<vid_t> targets)
    : offsets_(std::move(offsets)), targets_(std::move(targets)) {
  HIPA_CHECK(!offsets_.empty(), "CSR offsets must have at least one entry");
  HIPA_CHECK(offsets_[0] == 0, "CSR offsets must start at 0");
  for (std::size_t v = 1; v < offsets_.size(); ++v) {
    HIPA_CHECK(offsets_[v - 1] <= offsets_[v],
               "CSR offsets must be monotone at v=" << v);
  }
  HIPA_CHECK(offsets_[offsets_.size() - 1] == targets_.size(),
             "CSR offsets tail must equal edge count");
  const vid_t v_count = num_vertices();
  for (vid_t t : targets_.span()) {
    HIPA_CHECK(t < v_count, "CSR target " << t << " out of range");
  }
}

eid_t CsrGraph::count_edges_within(VertexRange r) const {
  eid_t count = 0;
  for (vid_t v = r.begin; v < r.end; ++v) {
    for (vid_t u : neighbors(v)) {
      if (r.contains(u)) ++count;
    }
  }
  return count;
}

CsrGraph CsrGraph::transpose() const {
  const vid_t v_count = num_vertices();
  const eid_t e_count = num_edges();

  AlignedBuffer<eid_t> rev_offsets(static_cast<std::size_t>(v_count) + 1);
  rev_offsets.fill_zero();

  // Count in-degrees (shifted by one so the scan lands in place).
  for (vid_t t : targets_.span()) rev_offsets[t + 1]++;
  for (std::size_t v = 1; v <= v_count; ++v) rev_offsets[v] += rev_offsets[v - 1];

  AlignedBuffer<vid_t> rev_targets(static_cast<std::size_t>(e_count));
  AlignedBuffer<eid_t> cursor(static_cast<std::size_t>(v_count));
  for (vid_t v = 0; v < v_count; ++v) cursor[v] = rev_offsets[v];

  for (vid_t v = 0; v < v_count; ++v) {
    for (vid_t u : neighbors(v)) {
      rev_targets[cursor[u]++] = v;
    }
  }
  return CsrGraph(std::move(rev_offsets), std::move(rev_targets));
}

}  // namespace hipa::graph
