// Deterministic synthetic graph generators.
//
// Real datasets in the paper (LiveJournal, pld, wiki, twitter, mpi) are
// multi-hundred-MB downloads unavailable here; the generators below
// produce stand-ins with the properties that matter for PageRank
// traffic shape — skewed (power-law) degree distributions, direction,
// density — plus the paper's `kron` graph, which *is* synthetic
// (Graph500 Kronecker / R-MAT) and is generated faithfully.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "graph/csr.hpp"

namespace hipa::graph {

/// Graph500 R-MAT (Kronecker) generator.
///
/// `scale` gives 2^scale vertices; `edge_factor` edges per vertex.
/// Defaults are the Graph500 reference probabilities.
struct RmatParams {
  unsigned scale = 18;
  unsigned edge_factor = 16;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  std::uint64_t seed = 42;
  bool scramble_ids = true;  ///< permute ids so locality is not an artifact
};
[[nodiscard]] std::vector<Edge> generate_rmat(const RmatParams& p);

/// Erdős–Rényi G(n, m): m directed edges chosen uniformly.
[[nodiscard]] std::vector<Edge> generate_erdos_renyi(vid_t num_vertices,
                                                     eid_t num_edges,
                                                     std::uint64_t seed);

/// Skewed "social/web network" generator.
///
/// Edge endpoints are drawn from Zipf *popularity* distributions. A
/// popularity exponent beta in (0, 1) yields a degree distribution with
/// power-law exponent alpha = 1 + 1/beta: the measured alpha of 2.1-2.4
/// for web/social graphs corresponds to beta of 0.7-0.9. (beta >= 1
/// would hand one vertex a constant fraction of all edges, which real
/// graphs do not exhibit.)
struct ZipfParams {
  vid_t num_vertices = 1u << 18;
  eid_t num_edges = 1u << 22;
  double exponent = 0.88;      ///< target (in-degree) popularity skew
  double src_exponent = 0.75;  ///< source (out-degree) skew; 0 = uniform
  std::uint64_t seed = 7;
};
[[nodiscard]] std::vector<Edge> generate_zipf(const ZipfParams& p);

/// 2-D torus grid (each vertex -> 4 neighbors); a low-skew, high
/// locality counterpoint used in tests.
[[nodiscard]] std::vector<Edge> generate_grid_torus(vid_t side);

/// Sampler for Zipf-distributed ranks in [0, n) using the rejection
/// method of Jain–Chlamtac (amortized O(1), no table build).
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double exponent);

  /// Draw a rank in [0, n); rank 0 is the most popular.
  [[nodiscard]] std::uint64_t sample(Xoshiro256& rng) const;

 private:
  std::uint64_t n_;
  double exponent_;
  double h_x1_;  // H(1.5) - 1
  double h_n_;   // H(n + 0.5)
  double s_;
  [[nodiscard]] double h_integral(double x) const;
  [[nodiscard]] double h(double x) const;
  [[nodiscard]] double h_integral_inverse(double u) const;
};

}  // namespace hipa::graph
