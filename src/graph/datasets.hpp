// Stand-ins for the paper's six evaluation graphs (Table 1).
//
// The real datasets (LiveJournal, Pay-Level-Domain, Wiki Links,
// Graph500 Kronecker scale-23, Twitter follower, Twitter influence)
// total ~6.4 B edges and are not available offline; each stand-in is a
// deterministic synthetic graph with matched direction, degree skew and
// density, scaled down by `scale_denom` (default 64, the factor
// documented in DESIGN.md). `kron` is generated with the same R-MAT
// process the paper uses, only at a smaller scale.
#pragma once

#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace hipa::graph {

/// Descriptor of one paper dataset and its synthetic stand-in.
struct DatasetInfo {
  std::string name;         ///< paper's short name (journal, pld, ...)
  std::string description;  ///< paper's description column
  // Paper-reported full-size statistics (Table 1):
  double paper_vertices = 0;  ///< e.g. 4.8e6
  double paper_edges = 0;     ///< e.g. 68.5e6
  /// Scale denominator the benches use for this graph. The simulated
  /// machine's caches are shrunk by the *same* factor, so every
  /// size-relative effect (cache residency, partition counts) sits at
  /// the paper's operating point while keeping runs tractable.
  unsigned recommended_scale = 64;
};

/// Scale denominator paired with `name` (see DatasetInfo).
[[nodiscard]] unsigned recommended_scale(const std::string& name);

/// All six paper datasets in Table 1 order.
[[nodiscard]] const std::vector<DatasetInfo>& paper_datasets();

/// Generate the stand-in for `name` at 1/scale_denom of paper size.
/// Deterministic for a given (name, scale_denom).
[[nodiscard]] Graph make_dataset(const std::string& name,
                                 unsigned scale_denom = 64);

/// Smaller variant for unit tests (scale_denom = 1024).
[[nodiscard]] Graph make_tiny_dataset(const std::string& name);

}  // namespace hipa::graph
