// Graph serialization: whitespace edge lists (SNAP/KONECT style), a
// fast binary CSR container (HCSR v1/v2), and the segmented HCSR v3
// container for out-of-core execution (per-destination-range segment
// slices with a checksummed manifest, mapped or read one at a time).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace hipa::graph {

/// Read a text edge list: one "src dst" pair per line, '#' or '%'
/// comment lines skipped. Returns edges and the implied vertex count
/// (max id + 1).
struct EdgeListFile {
  std::vector<Edge> edges;
  vid_t num_vertices = 0;
};
[[nodiscard]] EdgeListFile read_edge_list(const std::string& path);

/// What a streaming pass over an edge list learned without keeping the
/// tuples: the implied vertex count (max id + 1) and the edge total.
struct EdgeListInfo {
  vid_t num_vertices = 0;
  std::uint64_t num_edges = 0;
};

/// Chunked streaming reader: parse `path` with the same strict
/// validation as read_edge_list but hand edges to `sink` in chunks of
/// at most `chunk_edges`, so converting a large file never
/// materializes all its tuples at once (peak memory is one chunk).
/// read_edge_list is implemented on top of this.
EdgeListInfo stream_edge_list(
    const std::string& path,
    const std::function<void(std::span<const Edge>)>& sink,
    std::size_t chunk_edges = std::size_t{1} << 20);

/// Write a text edge list (with a header comment).
void write_edge_list(const std::string& path, vid_t num_vertices,
                     const std::vector<Edge>& edges);

/// Binary CSR container (".hcsr"): magic, version, V, E, offsets,
/// targets. Little-endian, host-width types as defined in types.hpp.
/// Reads v1 and v2; segmented v3 files are rejected with a pointer to
/// SegmentedCsr.
void save_csr(const std::string& path, const CsrGraph& g);
[[nodiscard]] CsrGraph load_csr(const std::string& path);

// ---------------------------------------------------------------------------
// Segmented HCSR v3 — the out-of-core container.
// ---------------------------------------------------------------------------
//
// Layout (little-endian, host-width types):
//
//   [0]  u64 magic (HCSR v3)   [8]  u64 num_vertices
//   [16] u64 num_edges         [24] u64 num_segments
//   [32] u64 header checksum (FNV-1a over the four words above)
//   [40] manifest: num_segments x { u64 v_begin, v_end, file_offset,
//                                   payload_bytes, checksum }
//   [..] u64 manifest checksum (FNV-1a over the manifest bytes)
//   [..] out-degrees: num_vertices x u32 (kept resident by the
//        out-of-core engine for the inverse-degree table — the
//        payloads store the PULL direction)
//   [..] page-aligned segment payloads
//
// Each segment covers a destination range [v_begin, v_end) of the
// in-edge (pull) CSR. Its payload is (nv+1) eid_t offsets rebased to
// the segment (offsets[0] == 0) followed by ne vid_t sources, each
// vertex's sources ascending — exactly the order CsrGraph::transpose
// produces, so a reassembled file is bitwise the in-core transpose.

/// One manifest entry.
struct SegmentInfo {
  vid_t v_begin = 0;
  vid_t v_end = 0;  ///< destination range [v_begin, v_end)
  std::uint64_t file_offset = 0;  ///< page-aligned payload start
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;  ///< FNV-1a over the payload bytes

  [[nodiscard]] vid_t num_vertices() const { return v_end - v_begin; }
};

/// A planned (not yet written) segment: its range and edge count.
struct SegmentPlan {
  VertexRange range;
  std::uint64_t edges = 0;
};

/// Payload bytes a segment of `nv` vertices / `ne` edges occupies:
/// (nv+1) local eid_t offsets + ne vid_t sources.
[[nodiscard]] constexpr std::size_t segment_payload_bytes(
    std::uint64_t nv, std::uint64_t ne) {
  return (static_cast<std::size_t>(nv) + 1) * sizeof(eid_t) +
         static_cast<std::size_t>(ne) * sizeof(vid_t);
}

/// Greedily split [0, V) into destination ranges whose payloads stay
/// at or under `target_segment_bytes` (a single vertex whose own
/// payload exceeds the target still gets a segment — the format never
/// splits one vertex's in-list). `in_degrees[v]` is v's in-degree.
[[nodiscard]] std::vector<SegmentPlan> plan_segments(
    std::span<const std::uint64_t> in_degrees,
    std::size_t target_segment_bytes);

/// Streaming v3 writer shared by save_segmented_csr and the offline
/// hipa-convert sharder: the full layout is computed up front from the
/// plan, payloads are appended in order (checksummed as they stream
/// through), and finish() back-patches the manifest.
class SegmentedCsrWriter {
 public:
  /// Opens `path` and writes header + degree table; `plans` must cover
  /// [0, num_vertices) contiguously and sum to num_edges.
  SegmentedCsrWriter(const std::string& path, std::uint64_t num_vertices,
                     std::uint64_t num_edges,
                     std::vector<SegmentPlan> plans,
                     std::span<const std::uint32_t> out_degrees);
  ~SegmentedCsrWriter();
  SegmentedCsrWriter(const SegmentedCsrWriter&) = delete;
  SegmentedCsrWriter& operator=(const SegmentedCsrWriter&) = delete;

  /// Append the next planned segment's payload. `local_offsets` has
  /// plan.range size + 1 entries rebased to 0; `sources` has
  /// plan.edges entries.
  void write_segment(std::span<const eid_t> local_offsets,
                     std::span<const vid_t> sources);

  /// Seal the file: back-patch the manifest (with per-segment
  /// checksums) and its checksum. Must be called after every planned
  /// segment was written.
  void finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Shard an in-memory Graph into a segmented v3 file: the pull (in)
/// direction is sliced by destination range, out-degrees ride along
/// for the resident inverse-degree table.
void save_segmented_csr(const std::string& path, const Graph& g,
                        std::size_t target_segment_bytes);

/// Read-side handle over a segmented v3 file. Opening validates the
/// header, manifest (checksums, contiguous coverage, in-file bounds)
/// and loads only the degree table; segment payloads are fetched on
/// demand via read_segment (pread into caller storage) or
/// map_segment/unmap_segment (mmap + MADV_WILLNEED). Byte accounting
/// (cumulative fetched, current/peak mapped) feeds the out-of-core
/// engine's budget assertion and the `oocore` bench section.
///
/// read_segment is safe to call from a prefetch thread concurrently
/// with map/unmap/metadata calls on another thread.
class SegmentedCsr {
 public:
  [[nodiscard]] static SegmentedCsr open(const std::string& path);

  SegmentedCsr();
  ~SegmentedCsr();
  SegmentedCsr(SegmentedCsr&&) noexcept;
  SegmentedCsr& operator=(SegmentedCsr&&) noexcept;
  SegmentedCsr(const SegmentedCsr&) = delete;
  SegmentedCsr& operator=(const SegmentedCsr&) = delete;

  [[nodiscard]] vid_t num_vertices() const;
  [[nodiscard]] eid_t num_edges() const;
  [[nodiscard]] unsigned num_segments() const;
  [[nodiscard]] const SegmentInfo& segment(unsigned s) const;
  [[nodiscard]] std::span<const std::uint32_t> out_degrees() const;

  /// Largest single segment payload — the unit the out-of-core
  /// engine's staging slots are sized by.
  [[nodiscard]] std::size_t max_payload_bytes() const;
  /// Sum of all payloads — what a fully resident run would map.
  [[nodiscard]] std::size_t total_payload_bytes() const;

  /// pread segment `s` into `dst` (at least payload_bytes writable)
  /// and verify its manifest checksum. Thread-safe.
  void read_segment(unsigned s, void* dst) const;

  /// Decoded view over a fetched payload of segment `s` (`payload` is
  /// what read_segment filled or map_segment returned).
  struct SegmentView {
    VertexRange range;
    std::span<const eid_t> offsets;  ///< nv+1 entries, rebased to 0
    std::span<const vid_t> sources;
  };
  [[nodiscard]] SegmentView view(unsigned s, const void* payload) const;

  /// Map segment `s` read-only (mmap + MADV_WILLNEED), verify its
  /// checksum, and account the mapping. Repeated maps of the same
  /// segment return the existing mapping.
  [[nodiscard]] const void* map_segment(unsigned s);
  /// Drop segment `s`'s mapping (no-op if not mapped).
  void unmap_segment(unsigned s);

  /// Currently mapped payload bytes (map_segment minus unmap_segment).
  [[nodiscard]] std::size_t mapped_bytes() const;
  /// High-water mark of mapped_bytes over this handle's lifetime.
  [[nodiscard]] std::size_t peak_mapped_bytes() const;
  /// Cumulative payload bytes fetched (reads + fresh maps).
  [[nodiscard]] std::uint64_t bytes_fetched() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hipa::graph
