// Graph serialization: whitespace edge lists (SNAP/KONECT style) and a
// fast binary CSR container.
#pragma once

#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace hipa::graph {

/// Read a text edge list: one "src dst" pair per line, '#' or '%'
/// comment lines skipped. Returns edges and the implied vertex count
/// (max id + 1).
struct EdgeListFile {
  std::vector<Edge> edges;
  vid_t num_vertices = 0;
};
[[nodiscard]] EdgeListFile read_edge_list(const std::string& path);

/// Write a text edge list (with a header comment).
void write_edge_list(const std::string& path, vid_t num_vertices,
                     const std::vector<Edge>& edges);

/// Binary CSR container (".hcsr"): magic, version, V, E, offsets,
/// targets. Little-endian, host-width types as defined in types.hpp.
void save_csr(const std::string& path, const CsrGraph& g);
[[nodiscard]] CsrGraph load_csr(const std::string& path);

}  // namespace hipa::graph
