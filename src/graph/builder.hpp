// Edge-list → CSR builder with canonicalization options.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace hipa::graph {

/// Canonicalization applied while building.
struct BuildOptions {
  bool sort_neighbors = true;      ///< sort each adjacency list ascending
  bool remove_duplicates = false;  ///< drop parallel edges (requires sort)
  bool remove_self_loops = false;  ///< drop v->v edges
  bool symmetrize = false;         ///< add reverse of every edge
};

/// Build an out-direction CSR over `num_vertices` vertices from an
/// arbitrary-order edge list. Edges referencing vertices >= num_vertices
/// are rejected (HIPA_CHECK).
[[nodiscard]] CsrGraph build_csr(vid_t num_vertices,
                                 std::span<const Edge> edges,
                                 const BuildOptions& opts = {});

/// Convenience: build the full out+in bundle.
[[nodiscard]] Graph build_graph(vid_t num_vertices,
                                std::span<const Edge> edges,
                                const BuildOptions& opts = {});

/// Braced-list conveniences (tests, examples).
[[nodiscard]] inline CsrGraph build_csr(vid_t num_vertices,
                                        std::initializer_list<Edge> edges,
                                        const BuildOptions& opts = {}) {
  return build_csr(num_vertices,
                   std::span<const Edge>(edges.begin(), edges.size()), opts);
}
[[nodiscard]] inline Graph build_graph(vid_t num_vertices,
                                       std::initializer_list<Edge> edges,
                                       const BuildOptions& opts = {}) {
  return build_graph(num_vertices,
                     std::span<const Edge>(edges.begin(), edges.size()),
                     opts);
}

}  // namespace hipa::graph
