#include "graph/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"

namespace hipa::graph {

DegreeStats degree_stats(const CsrGraph& g) {
  DegreeStats s;
  const vid_t n = g.num_vertices();
  if (n == 0) return s;

  std::vector<vid_t> degrees(n);
  double sum = 0.0;
  double sum_sq = 0.0;
  s.min_degree = g.degree(0);
  for (vid_t v = 0; v < n; ++v) {
    const vid_t d = g.degree(v);
    degrees[v] = d;
    sum += d;
    sum_sq += static_cast<double>(d) * d;
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
  }
  s.avg_degree = sum / n;
  const double var = sum_sq / n - s.avg_degree * s.avg_degree;
  s.stddev = var > 0 ? std::sqrt(var) : 0.0;

  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  const double threshold = 0.9 * sum;
  double acc = 0.0;
  vid_t count = 0;
  for (vid_t d : degrees) {
    if (acc >= threshold) break;
    acc += d;
    ++count;
  }
  s.skew_vertex_fraction_for_90pct_edges =
      static_cast<double>(count) / static_cast<double>(n);
  return s;
}

PartitionEdgeStats partition_edge_stats(const CsrGraph& out,
                                        vid_t vertices_per_partition) {
  HIPA_CHECK(vertices_per_partition > 0);
  PartitionEdgeStats s;
  s.vertices_per_partition = vertices_per_partition;
  const vid_t n = out.num_vertices();
  s.num_partitions =
      n == 0 ? 0 : static_cast<std::uint32_t>(
                       ceil_div<vid_t>(n, vertices_per_partition));
  if (n == 0) return s;

  auto part_of = [&](vid_t v) { return v / vertices_per_partition; };

  // Distinct destination partitions per source vertex give the
  // compressed inter-edge count; a small dedup buffer suffices because
  // neighbor lists are scanned per vertex.
  std::vector<std::uint32_t> seen(s.num_partitions, ~0u);
  for (vid_t v = 0; v < n; ++v) {
    const std::uint32_t pv = part_of(v);
    for (vid_t u : out.neighbors(v)) {
      const std::uint32_t pu = part_of(u);
      if (pu == pv) {
        ++s.intra_edges_total;
      } else {
        ++s.inter_edges_total;
        if (seen[pu] != v) {
          seen[pu] = v;
          ++s.compressed_inter_total;
        }
      }
    }
  }
  s.intra_per_partition =
      static_cast<double>(s.intra_edges_total) / s.num_partitions;
  s.inter_per_partition =
      static_cast<double>(s.inter_edges_total) / s.num_partitions;
  return s;
}

}  // namespace hipa::graph
