#include "graph/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace hipa::graph {

namespace {

/// Generation recipe for one stand-in at full paper size; make_dataset
/// divides both axes by the scale denominator.
struct Recipe {
  DatasetInfo info;
  double zipf_exponent = 0.0;  ///< 0 => use R-MAT instead of Zipf
  double src_exponent = 0.0;
  std::uint64_t seed = 0;
};

const std::vector<Recipe>& recipes() {
  static const std::vector<Recipe> r = {
      // Zipf exponents are *popularity* exponents beta < 1: the degree
      // distribution then follows a power law with exponent 1 + 1/beta
      // (the 2.1-2.4 measured for these datasets). Second value: source
      // (out-degree) popularity.
      {{"journal", "LiveJournal social network", 4.8e6, 68.5e6, 8},
       0.88, 0.75, 1001},
      {{"pld", "Pay-Level-Domain web hyperlinks", 42.9e6, 0.6e9, 64},
       0.92, 0.85, 1002},
      {{"wiki", "Wiki Links hyperlink graph", 18.3e6, 0.2e9, 32},
       0.90, 0.80, 1003},
      {{"kron", "Graph500 Kronecker synthetic", 67e6, 2.1e9, 256},
       0.0, 0.0, 1004},
      {{"twitter", "Twitter follower network", 41.7e6, 1.5e9, 256},
       0.93, 0.85, 1005},
      {{"mpi", "Twitter influence network", 52.6e6, 2.0e9, 256},
       0.85, 0.70, 1006},
  };
  return r;
}

const Recipe& find_recipe(const std::string& name) {
  for (const Recipe& r : recipes()) {
    if (r.info.name == name) return r;
  }
  HIPA_CHECK(false, "unknown dataset '" << name << '\'');
  __builtin_unreachable();
}

Graph generate(const Recipe& r, unsigned scale_denom) {
  HIPA_CHECK(scale_denom >= 1);
  const double v_target = r.info.paper_vertices / scale_denom;
  const double e_target = r.info.paper_edges / scale_denom;

  std::vector<Edge> edges;
  vid_t num_vertices;
  if (r.zipf_exponent == 0.0) {
    // kron: R-MAT with the Graph500 probabilities; pick the scale whose
    // vertex count is nearest the target and adjust the edge factor.
    unsigned scale = 1;
    while ((1ull << (scale + 1)) <= static_cast<std::uint64_t>(v_target)) {
      ++scale;
    }
    num_vertices = vid_t{1} << scale;
    RmatParams p;
    p.scale = scale;
    p.edge_factor = std::max<unsigned>(
        1, static_cast<unsigned>(std::llround(e_target / num_vertices)));
    p.seed = r.seed;
    edges = generate_rmat(p);
  } else {
    num_vertices =
        std::max<vid_t>(64, static_cast<vid_t>(std::llround(v_target)));
    ZipfParams p;
    p.num_vertices = num_vertices;
    p.num_edges = std::max<eid_t>(
        num_vertices, static_cast<eid_t>(std::llround(e_target)));
    p.exponent = r.zipf_exponent;
    p.src_exponent = r.src_exponent;
    p.seed = r.seed;
    edges = generate_zipf(p);
  }
  return build_graph(num_vertices, edges, BuildOptions{});
}

}  // namespace

const std::vector<DatasetInfo>& paper_datasets() {
  static const std::vector<DatasetInfo> infos = [] {
    std::vector<DatasetInfo> v;
    for (const Recipe& r : recipes()) v.push_back(r.info);
    return v;
  }();
  return infos;
}

unsigned recommended_scale(const std::string& name) {
  return find_recipe(name).info.recommended_scale;
}

Graph make_dataset(const std::string& name, unsigned scale_denom) {
  return generate(find_recipe(name), scale_denom);
}

Graph make_tiny_dataset(const std::string& name) {
  return make_dataset(name, 1024);
}

}  // namespace hipa::graph
