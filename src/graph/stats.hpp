// Graph statistics: degree distribution summaries and the
// intra-/inter-edge partition statistics reported in paper Table 1.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace hipa::graph {

/// Degree distribution summary for one edge direction.
struct DegreeStats {
  vid_t min_degree = 0;
  vid_t max_degree = 0;
  double avg_degree = 0.0;
  double stddev = 0.0;
  /// Smallest fraction of vertices covering >= 90% of edges — the
  /// paper's "10% of vertices hold 90% of edges" skew measure.
  double skew_vertex_fraction_for_90pct_edges = 0.0;
};
[[nodiscard]] DegreeStats degree_stats(const CsrGraph& g);

/// Edge placement relative to fixed-size vertex partitions
/// (paper Table 1, Section 2.3).
struct PartitionEdgeStats {
  vid_t vertices_per_partition = 0;
  std::uint32_t num_partitions = 0;
  eid_t intra_edges_total = 0;  ///< src and dst in the same partition
  eid_t inter_edges_total = 0;  ///< src and dst in different partitions
  /// Inter-edges after PCPM compression: distinct (source vertex,
  /// destination partition) pairs with src and dst partitions distinct.
  eid_t compressed_inter_total = 0;
  double intra_per_partition = 0.0;
  double inter_per_partition = 0.0;
};

/// Compute edge statistics for contiguous partitions of
/// `vertices_per_partition` vertices (last partition ragged).
[[nodiscard]] PartitionEdgeStats partition_edge_stats(
    const CsrGraph& out, vid_t vertices_per_partition);

}  // namespace hipa::graph
