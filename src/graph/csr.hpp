// Compressed Sparse Row graph storage.
//
// A CsrGraph stores one edge direction: `offsets[v] .. offsets[v+1]`
// index into `targets`, giving v's neighbor list. The Graph bundle
// below pairs the out-direction with its transpose (in-direction),
// since PageRank engines need out-degrees (scatter / contribution) and
// in-neighbors (pull / gather).
#pragma once

#include <span>
#include <utility>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace hipa::graph {

/// Single-direction CSR adjacency structure. Immutable after build.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Takes ownership of prebuilt arrays. offsets.size() == V+1,
  /// offsets[0] == 0, offsets[V] == targets.size(), offsets monotone.
  CsrGraph(AlignedBuffer<eid_t> offsets, AlignedBuffer<vid_t> targets);

  [[nodiscard]] vid_t num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<vid_t>(offsets_.size() - 1);
  }
  [[nodiscard]] eid_t num_edges() const {
    return offsets_.empty() ? 0 : offsets_[offsets_.size() - 1];
  }

  /// Degree of v in this direction.
  [[nodiscard]] vid_t degree(vid_t v) const {
    return static_cast<vid_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbor list of v.
  [[nodiscard]] std::span<const vid_t> neighbors(vid_t v) const {
    return {targets_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }

  [[nodiscard]] std::span<const eid_t> offsets() const {
    return offsets_.span();
  }
  [[nodiscard]] std::span<const vid_t> targets() const {
    return targets_.span();
  }

  /// Sum of edges whose endpoints both lie in [r.begin, r.end).
  /// Convenience for partition statistics; O(E) worst case.
  [[nodiscard]] eid_t count_edges_within(VertexRange r) const;

  /// Build the reverse-direction CSR (transpose).
  [[nodiscard]] CsrGraph transpose() const;

 private:
  AlignedBuffer<eid_t> offsets_;
  AlignedBuffer<vid_t> targets_;
};

/// Reciprocal-degree table: inv[v] = 1 / degree(v), exactly 0 for
/// sinks. THE shared owner of the sink-vertex semantics — every engine
/// replaces its per-iteration `deg == 0 ? 0 : x / deg` divide with a
/// branchless `x * inv[v]` multiply (sinks contribute nothing because
/// their reciprocal is an exact +0). Computed once at preprocessing
/// time; `F` picks the engine's arithmetic width (float engines use
/// rank_t, the double-precision Polymer baseline uses double).
template <class F>
[[nodiscard]] AlignedBuffer<F> inverse_degrees(const CsrGraph& g) {
  const vid_t n = g.num_vertices();
  AlignedBuffer<F> inv(n);
  const auto offsets = g.offsets();
  for (vid_t v = 0; v < n; ++v) {
    const eid_t d = offsets[v + 1] - offsets[v];
    inv[v] = d == 0 ? F{0} : F{1} / static_cast<F>(d);
  }
  return inv;
}

/// Out + in direction bundle used by the engines.
struct Graph {
  CsrGraph out;  ///< out-edges: scatter direction, out-degrees
  CsrGraph in;   ///< in-edges: pull direction

  [[nodiscard]] vid_t num_vertices() const { return out.num_vertices(); }
  [[nodiscard]] eid_t num_edges() const { return out.num_edges(); }

  /// Construct the bundle from an out-direction CSR (builds transpose).
  static Graph from_out(CsrGraph out_csr) {
    Graph g;
    g.in = out_csr.transpose();
    g.out = std::move(out_csr);
    return g;
  }
};

}  // namespace hipa::graph
