#include "graph/io.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#if defined(__unix__) || defined(__APPLE__)
#define HIPA_IO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "common/error.hpp"

namespace hipa::graph {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_file(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  HIPA_CHECK(f != nullptr, "cannot open '" << path << "' (" << mode << ')');
  return f;
}

// HCSR container versions. v2 (current) adds a header checksum so
// foreign/corrupted files fail with a clear message instead of an
// absurd allocation; v1 files (no checksum) are still accepted.
constexpr std::uint64_t kMagicV1 = 0x48435352'00000001ULL;  // "HCSR" v1
constexpr std::uint64_t kMagicV2 = 0x48435352'00000002ULL;  // "HCSR" v2

/// FNV-1a over the header's magic/V/E words — cheap, order-sensitive,
/// and catches both bit rot in the counts and files that merely start
/// with the right magic.
std::uint64_t header_checksum(std::uint64_t magic, std::uint64_t v,
                              std::uint64_t e) {
  std::uint64_t h = 1469598103934665603ULL;
  const std::uint64_t words[3] = {magic, v, e};
  for (const std::uint64_t w : words) {
    for (unsigned byte = 0; byte < 8; ++byte) {
      h ^= (w >> (8 * byte)) & 0xffu;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

struct HcsrHeader {
  std::uint64_t magic = 0;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t checksum = 0;  ///< v2 only

  [[nodiscard]] std::size_t size_bytes() const {
    return magic == kMagicV1 ? 24 : 32;
  }
  [[nodiscard]] std::size_t offsets_bytes() const {
    return static_cast<std::size_t>(num_vertices + 1) * sizeof(eid_t);
  }
  [[nodiscard]] std::size_t targets_bytes() const {
    return static_cast<std::size_t>(num_edges) * sizeof(vid_t);
  }
  [[nodiscard]] std::size_t file_bytes() const {
    return size_bytes() + offsets_bytes() + targets_bytes();
  }
};

/// Parse + validate an HCSR header from `raw` (at least
/// `raw_bytes` readable). `file_bytes` is the actual on-disk size;
/// both truncated and padded files are rejected with exact numbers.
HcsrHeader check_header(const std::string& path, const void* raw,
                        std::size_t raw_bytes, std::size_t file_bytes) {
  HIPA_CHECK(raw_bytes >= 24, "'" << path << "' is not a HCSR file: only "
                                  << raw_bytes
                                  << " bytes, smaller than any header");
  HcsrHeader h;
  const char* p = static_cast<const char*>(raw);
  std::memcpy(&h.magic, p, 8);
  HIPA_CHECK(h.magic == kMagicV1 || h.magic == kMagicV2,
             "'" << path << "' is not a HCSR file (magic 0x" << std::hex
                 << h.magic << std::dec
                 << "; expected HCSR v1 or v2) — refusing to parse a "
                    "foreign format");
  std::memcpy(&h.num_vertices, p + 8, 8);
  std::memcpy(&h.num_edges, p + 16, 8);
  if (h.magic == kMagicV2) {
    HIPA_CHECK(raw_bytes >= 32, "'" << path
                                    << "' truncated inside the v2 header ("
                                    << raw_bytes << " of 32 bytes)");
    std::memcpy(&h.checksum, p + 24, 8);
    const std::uint64_t want =
        header_checksum(h.magic, h.num_vertices, h.num_edges);
    HIPA_CHECK(h.checksum == want,
               "'" << path << "' header checksum mismatch (file 0x"
                   << std::hex << h.checksum << ", computed 0x" << want
                   << std::dec << ") — corrupted or foreign file");
  }
  HIPA_CHECK(h.num_vertices < kInvalidVid,
             "'" << path << "' vertex count " << h.num_vertices
                 << " overflows vid_t — corrupted header");
  HIPA_CHECK(file_bytes == h.file_bytes(),
             "'" << path << "' size mismatch: " << file_bytes
                 << " bytes on disk, header implies " << h.file_bytes()
                 << " (" << h.num_vertices << " vertices, " << h.num_edges
                 << " edges) — truncated or corrupted file");
  return h;
}

CsrGraph payload_to_csr(const HcsrHeader& h, const char* payload) {
  AlignedBuffer<eid_t> offsets(h.num_vertices + 1);
  AlignedBuffer<vid_t> targets(h.num_edges);
  std::memcpy(offsets.data(), payload, h.offsets_bytes());
  std::memcpy(targets.data(), payload + h.offsets_bytes(),
              h.targets_bytes());
  return CsrGraph(std::move(offsets), std::move(targets));
}

void write_exact(std::FILE* f, const void* p, std::size_t bytes) {
  HIPA_CHECK(std::fwrite(p, 1, bytes, f) == bytes, "short write");
}

/// Portable stdio fallback (and the path taken when mmap fails):
/// size the file via seek, validate the header against it, then read
/// the payload with exact-size checks.
CsrGraph load_csr_stdio(const std::string& path) {
  FilePtr f = open_file(path, "rb");
  HIPA_CHECK(std::fseek(f.get(), 0, SEEK_END) == 0,
             "cannot seek '" << path << "'");
  const long end = std::ftell(f.get());
  HIPA_CHECK(end >= 0, "cannot size '" << path << "'");
  const auto file_bytes = static_cast<std::size_t>(end);
  std::rewind(f.get());

  unsigned char head[32] = {};
  const std::size_t head_bytes =
      std::fread(head, 1, sizeof head, f.get());
  const HcsrHeader h = check_header(path, head, head_bytes, file_bytes);

  HIPA_CHECK(std::fseek(f.get(), static_cast<long>(h.size_bytes()),
                        SEEK_SET) == 0,
             "cannot seek '" << path << "'");
  AlignedBuffer<eid_t> offsets(h.num_vertices + 1);
  AlignedBuffer<vid_t> targets(h.num_edges);
  HIPA_CHECK(std::fread(offsets.data(), 1, h.offsets_bytes(), f.get()) ==
                 h.offsets_bytes(),
             "'" << path << "' truncated inside the offsets array");
  HIPA_CHECK(std::fread(targets.data(), 1, h.targets_bytes(), f.get()) ==
                 h.targets_bytes(),
             "'" << path << "' truncated inside the targets array");
  return CsrGraph(std::move(offsets), std::move(targets));
}

#if HIPA_IO_HAVE_MMAP
/// mmap-backed load: one mapping gives the exact file size up front
/// (so truncation is a precise error, not a mid-read surprise) and the
/// kernel streams pages in without stdio's double buffering. The
/// payload is copied into page-aligned AlignedBuffers — the CSR
/// arrays' alignment contract (cache-line minimum) cannot be met by
/// data sitting at file offset 24/32 inside the mapping.
bool load_csr_mmap(const std::string& path, CsrGraph* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  HIPA_CHECK(fd >= 0, "cannot open '" << path << "' (rb)");
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  struct stat st = {};
  HIPA_CHECK(::fstat(fd, &st) == 0, "cannot stat '" << path << "'");
  HIPA_CHECK(S_ISREG(st.st_mode),
             "'" << path << "' is not a regular file");
  const auto file_bytes = static_cast<std::size_t>(st.st_size);
  // Degenerate sizes still go through check_header for the real error
  // message, with an empty mapping.
  if (file_bytes == 0) {
    (void)check_header(path, "", 0, 0);
  }

  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map == MAP_FAILED) return false;  // caller falls back to stdio
  struct MapCloser {
    void* p;
    std::size_t n;
    ~MapCloser() { ::munmap(p, n); }
  } unmapper{map, file_bytes};

  const HcsrHeader h = check_header(path, map, file_bytes, file_bytes);
  *out = payload_to_csr(h, static_cast<const char*>(map) +
                               h.size_bytes());
  return true;
}
#endif

}  // namespace

EdgeListFile read_edge_list(const std::string& path) {
  FilePtr f = open_file(path, "r");
  EdgeListFile out;
  char line[4096];
  std::uint64_t lineno = 0;
  while (std::fgets(line, sizeof line, f.get()) != nullptr) {
    ++lineno;
    const std::size_t len = std::strlen(line);
    HIPA_CHECK(len + 1 < sizeof line || line[len - 1] == '\n',
               "" << path << ":" << lineno << ": line exceeds "
                    << (sizeof line - 2) << " characters");
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '#' || *p == '%' || *p == '\n' || *p == '\r' || *p == '\0') {
      continue;  // comment / blank line
    }
    const auto parse_id = [&](const char*& cur, const char* what) {
      while (*cur == ' ' || *cur == '\t') ++cur;
      HIPA_CHECK(*cur != '\0' && *cur != '\n' && *cur != '\r',
                 "" << path << ":" << lineno << ": missing " << what);
      HIPA_CHECK(*cur != '-', "" << path << ":" << lineno << ": negative "
                                   << what << " is not a vertex id");
      HIPA_CHECK(
          std::isdigit(static_cast<unsigned char>(*cur)) != 0,
          "" << path << ":" << lineno << ": malformed " << what
               << " (expected an unsigned integer, got '" << *cur << "')");
      errno = 0;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(cur, &end, 10);
      HIPA_CHECK(errno != ERANGE && v < kInvalidVid,
                 "" << path << ":" << lineno << ": " << what
                      << " overflows vid_t (max "
                      << (kInvalidVid - 1) << ")");
      cur = end;
      return static_cast<vid_t>(v);
    };
    Edge e;
    e.src = parse_id(p, "source id");
    e.dst = parse_id(p, "destination id");
    while (*p == ' ' || *p == '\t') ++p;
    HIPA_CHECK(*p == '\0' || *p == '\n' || *p == '\r',
               "" << path << ":" << lineno
                    << ": trailing garbage after the edge ('" << *p
                    << "...')");
    out.edges.push_back(e);
    out.num_vertices =
        std::max(out.num_vertices, std::max(e.src, e.dst) + 1);
  }
  return out;
}

void write_edge_list(const std::string& path, vid_t num_vertices,
                     const std::vector<Edge>& edges) {
  FilePtr f = open_file(path, "w");
  std::fprintf(f.get(), "# hipa edge list: %u vertices, %zu edges\n",
               num_vertices, edges.size());
  for (const Edge& e : edges) {
    std::fprintf(f.get(), "%u %u\n", e.src, e.dst);
  }
}

void save_csr(const std::string& path, const CsrGraph& g) {
  FilePtr f = open_file(path, "wb");
  const std::uint64_t v = g.num_vertices();
  const std::uint64_t e = g.num_edges();
  const std::uint64_t sum = header_checksum(kMagicV2, v, e);
  write_exact(f.get(), &kMagicV2, sizeof kMagicV2);
  write_exact(f.get(), &v, sizeof v);
  write_exact(f.get(), &e, sizeof e);
  write_exact(f.get(), &sum, sizeof sum);
  write_exact(f.get(), g.offsets().data(), g.offsets().size_bytes());
  write_exact(f.get(), g.targets().data(), g.targets().size_bytes());
}

CsrGraph load_csr(const std::string& path) {
#if HIPA_IO_HAVE_MMAP
  CsrGraph g;
  if (load_csr_mmap(path, &g)) return g;
  // mmap refused (exotic filesystem, resource limits): same
  // validations on the buffered path.
#endif
  return load_csr_stdio(path);
}

}  // namespace hipa::graph
