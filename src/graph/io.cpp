#include "graph/io.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/error.hpp"

namespace hipa::graph {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_file(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  HIPA_CHECK(f != nullptr, "cannot open '" << path << "' (" << mode << ')');
  return f;
}

constexpr std::uint64_t kMagic = 0x48435352'00000001ULL;  // "HCSR" v1

void write_exact(std::FILE* f, const void* p, std::size_t bytes) {
  HIPA_CHECK(std::fwrite(p, 1, bytes, f) == bytes, "short write");
}

void read_exact(std::FILE* f, void* p, std::size_t bytes) {
  HIPA_CHECK(std::fread(p, 1, bytes, f) == bytes, "short read");
}

}  // namespace

EdgeListFile read_edge_list(const std::string& path) {
  FilePtr f = open_file(path, "r");
  EdgeListFile out;
  char line[256];
  while (std::fgets(line, sizeof line, f.get()) != nullptr) {
    if (line[0] == '#' || line[0] == '%' || line[0] == '\n') continue;
    unsigned long long src = 0;
    unsigned long long dst = 0;
    if (std::sscanf(line, "%llu %llu", &src, &dst) != 2) continue;
    HIPA_CHECK(src < kInvalidVid && dst < kInvalidVid,
               "vertex id overflows vid_t in " << path);
    const Edge e{static_cast<vid_t>(src), static_cast<vid_t>(dst)};
    out.edges.push_back(e);
    out.num_vertices =
        std::max(out.num_vertices, std::max(e.src, e.dst) + 1);
  }
  return out;
}

void write_edge_list(const std::string& path, vid_t num_vertices,
                     const std::vector<Edge>& edges) {
  FilePtr f = open_file(path, "w");
  std::fprintf(f.get(), "# hipa edge list: %u vertices, %zu edges\n",
               num_vertices, edges.size());
  for (const Edge& e : edges) {
    std::fprintf(f.get(), "%u %u\n", e.src, e.dst);
  }
}

void save_csr(const std::string& path, const CsrGraph& g) {
  FilePtr f = open_file(path, "wb");
  const std::uint64_t v = g.num_vertices();
  const std::uint64_t e = g.num_edges();
  write_exact(f.get(), &kMagic, sizeof kMagic);
  write_exact(f.get(), &v, sizeof v);
  write_exact(f.get(), &e, sizeof e);
  write_exact(f.get(), g.offsets().data(), g.offsets().size_bytes());
  write_exact(f.get(), g.targets().data(), g.targets().size_bytes());
}

CsrGraph load_csr(const std::string& path) {
  FilePtr f = open_file(path, "rb");
  std::uint64_t magic = 0;
  std::uint64_t v = 0;
  std::uint64_t e = 0;
  read_exact(f.get(), &magic, sizeof magic);
  HIPA_CHECK(magic == kMagic, "'" << path << "' is not a HCSR v1 file");
  read_exact(f.get(), &v, sizeof v);
  read_exact(f.get(), &e, sizeof e);
  AlignedBuffer<eid_t> offsets(v + 1);
  AlignedBuffer<vid_t> targets(e);
  read_exact(f.get(), offsets.data(), (v + 1) * sizeof(eid_t));
  read_exact(f.get(), targets.data(), e * sizeof(vid_t));
  return CsrGraph(std::move(offsets), std::move(targets));
}

}  // namespace hipa::graph
