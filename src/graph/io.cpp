#include "graph/io.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#define HIPA_IO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "common/error.hpp"

namespace hipa::graph {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_file(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  HIPA_CHECK(f != nullptr, "cannot open '" << path << "' (" << mode << ')');
  return f;
}

// HCSR container versions. v2 adds a header checksum so foreign or
// corrupted files fail with a clear message instead of an absurd
// allocation; v1 files (no checksum) are still accepted. v3 is the
// segmented out-of-core container (manifest + per-destination-range
// payload slices) and is read exclusively through SegmentedCsr.
constexpr std::uint64_t kMagicV1 = 0x48435352'00000001ULL;  // "HCSR" v1
constexpr std::uint64_t kMagicV2 = 0x48435352'00000002ULL;  // "HCSR" v2
constexpr std::uint64_t kMagicV3 = 0x48435352'00000003ULL;  // "HCSR" v3

/// FNV-1a over a byte range (seedable so multi-span payloads chain).
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t h = 1469598103934665603ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// FNV-1a over the header's magic/V/E words — cheap, order-sensitive,
/// and catches both bit rot in the counts and files that merely start
/// with the right magic.
std::uint64_t header_checksum(std::uint64_t magic, std::uint64_t v,
                              std::uint64_t e) {
  const std::uint64_t words[3] = {magic, v, e};
  return fnv1a(words, sizeof words);
}

/// v3 header checksum: magic/V/E/S words.
std::uint64_t header_checksum_v3(std::uint64_t v, std::uint64_t e,
                                 std::uint64_t s) {
  const std::uint64_t words[4] = {kMagicV3, v, e, s};
  return fnv1a(words, sizeof words);
}

constexpr std::size_t kV3HeaderBytes = 40;
constexpr std::size_t kManifestEntryBytes = 5 * sizeof(std::uint64_t);

constexpr std::size_t round_up_page(std::size_t n) {
  return (n + kPageSize - 1) / kPageSize * kPageSize;
}

struct HcsrHeader {
  std::uint64_t magic = 0;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t checksum = 0;  ///< v2 only

  [[nodiscard]] std::size_t size_bytes() const {
    return magic == kMagicV1 ? 24 : 32;
  }
  [[nodiscard]] std::size_t offsets_bytes() const {
    return static_cast<std::size_t>(num_vertices + 1) * sizeof(eid_t);
  }
  [[nodiscard]] std::size_t targets_bytes() const {
    return static_cast<std::size_t>(num_edges) * sizeof(vid_t);
  }
  [[nodiscard]] std::size_t file_bytes() const {
    return size_bytes() + offsets_bytes() + targets_bytes();
  }
};

/// Parse + validate an HCSR header from `raw` (at least
/// `raw_bytes` readable). `file_bytes` is the actual on-disk size;
/// both truncated and padded files are rejected with exact numbers.
HcsrHeader check_header(const std::string& path, const void* raw,
                        std::size_t raw_bytes, std::size_t file_bytes) {
  HIPA_CHECK(raw_bytes >= 24, "'" << path << "' is not a HCSR file: only "
                                  << raw_bytes
                                  << " bytes, smaller than any header");
  HcsrHeader h;
  const char* p = static_cast<const char*>(raw);
  std::memcpy(&h.magic, p, 8);
  HIPA_CHECK(h.magic != kMagicV3,
             "'" << path << "' is a segmented HCSR v3 file — load it with "
                    "graph::SegmentedCsr::open (the out-of-core path); "
                    "plain load_csr reads v1/v2 only");
  HIPA_CHECK(h.magic == kMagicV1 || h.magic == kMagicV2,
             "'" << path << "' is not a HCSR file (magic 0x" << std::hex
                 << h.magic << std::dec
                 << "; expected HCSR v1 or v2) — refusing to parse a "
                    "foreign format");
  std::memcpy(&h.num_vertices, p + 8, 8);
  std::memcpy(&h.num_edges, p + 16, 8);
  if (h.magic == kMagicV2) {
    HIPA_CHECK(raw_bytes >= 32, "'" << path
                                    << "' truncated inside the v2 header ("
                                    << raw_bytes << " of 32 bytes)");
    std::memcpy(&h.checksum, p + 24, 8);
    const std::uint64_t want =
        header_checksum(h.magic, h.num_vertices, h.num_edges);
    HIPA_CHECK(h.checksum == want,
               "'" << path << "' header checksum mismatch (file 0x"
                   << std::hex << h.checksum << ", computed 0x" << want
                   << std::dec << ") — corrupted or foreign file");
  }
  HIPA_CHECK(h.num_vertices < kInvalidVid,
             "'" << path << "' vertex count " << h.num_vertices
                 << " overflows vid_t — corrupted header");
  HIPA_CHECK(file_bytes == h.file_bytes(),
             "'" << path << "' size mismatch: " << file_bytes
                 << " bytes on disk, header implies " << h.file_bytes()
                 << " (" << h.num_vertices << " vertices, " << h.num_edges
                 << " edges) — truncated or corrupted file");
  return h;
}

CsrGraph payload_to_csr(const HcsrHeader& h, const char* payload) {
  AlignedBuffer<eid_t> offsets(h.num_vertices + 1);
  AlignedBuffer<vid_t> targets(h.num_edges);
  std::memcpy(offsets.data(), payload, h.offsets_bytes());
  std::memcpy(targets.data(), payload + h.offsets_bytes(),
              h.targets_bytes());
  return CsrGraph(std::move(offsets), std::move(targets));
}

void write_exact(std::FILE* f, const void* p, std::size_t bytes) {
  HIPA_CHECK(std::fwrite(p, 1, bytes, f) == bytes, "short write");
}

void write_zeros(std::FILE* f, std::size_t bytes) {
  static const char zeros[4096] = {};
  while (bytes > 0) {
    const std::size_t n = std::min(bytes, sizeof zeros);
    write_exact(f, zeros, n);
    bytes -= n;
  }
}

/// Portable stdio fallback (and the path taken when mmap fails):
/// size the file via seek, validate the header against it, then read
/// the payload with exact-size checks.
CsrGraph load_csr_stdio(const std::string& path) {
  FilePtr f = open_file(path, "rb");
  HIPA_CHECK(std::fseek(f.get(), 0, SEEK_END) == 0,
             "cannot seek '" << path << "'");
  const long end = std::ftell(f.get());
  HIPA_CHECK(end >= 0, "cannot size '" << path << "'");
  const auto file_bytes = static_cast<std::size_t>(end);
  std::rewind(f.get());

  unsigned char head[32] = {};
  const std::size_t head_bytes =
      std::fread(head, 1, sizeof head, f.get());
  const HcsrHeader h = check_header(path, head, head_bytes, file_bytes);

  HIPA_CHECK(std::fseek(f.get(), static_cast<long>(h.size_bytes()),
                        SEEK_SET) == 0,
             "cannot seek '" << path << "'");
  AlignedBuffer<eid_t> offsets(h.num_vertices + 1);
  AlignedBuffer<vid_t> targets(h.num_edges);
  HIPA_CHECK(std::fread(offsets.data(), 1, h.offsets_bytes(), f.get()) ==
                 h.offsets_bytes(),
             "'" << path << "' truncated inside the offsets array");
  HIPA_CHECK(std::fread(targets.data(), 1, h.targets_bytes(), f.get()) ==
                 h.targets_bytes(),
             "'" << path << "' truncated inside the targets array");
  return CsrGraph(std::move(offsets), std::move(targets));
}

#if HIPA_IO_HAVE_MMAP
/// mmap-backed load: one mapping gives the exact file size up front
/// (so truncation is a precise error, not a mid-read surprise) and the
/// kernel streams pages in without stdio's double buffering. The
/// payload is copied into page-aligned AlignedBuffers — the CSR
/// arrays' alignment contract (cache-line minimum) cannot be met by
/// data sitting at file offset 24/32 inside the mapping.
bool load_csr_mmap(const std::string& path, CsrGraph* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  HIPA_CHECK(fd >= 0, "cannot open '" << path << "' (rb)");
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  struct stat st = {};
  HIPA_CHECK(::fstat(fd, &st) == 0, "cannot stat '" << path << "'");
  HIPA_CHECK(S_ISREG(st.st_mode),
             "'" << path << "' is not a regular file");
  const auto file_bytes = static_cast<std::size_t>(st.st_size);
  // Degenerate sizes still go through check_header for the real error
  // message, with an empty mapping.
  if (file_bytes == 0) {
    (void)check_header(path, "", 0, 0);
  }

  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map == MAP_FAILED) return false;  // caller falls back to stdio
  struct MapCloser {
    void* p;
    std::size_t n;
    ~MapCloser() { ::munmap(p, n); }
  } unmapper{map, file_bytes};

  const HcsrHeader h = check_header(path, map, file_bytes, file_bytes);
  *out = payload_to_csr(h, static_cast<const char*>(map) +
                               h.size_bytes());
  return true;
}
#endif

}  // namespace

EdgeListInfo stream_edge_list(
    const std::string& path,
    const std::function<void(std::span<const Edge>)>& sink,
    std::size_t chunk_edges) {
  HIPA_CHECK(chunk_edges > 0, "stream_edge_list: chunk_edges must be >= 1");
  FilePtr f = open_file(path, "r");
  EdgeListInfo info;
  std::vector<Edge> chunk;
  chunk.reserve(chunk_edges);
  char line[4096];
  std::uint64_t lineno = 0;
  while (std::fgets(line, sizeof line, f.get()) != nullptr) {
    ++lineno;
    const std::size_t len = std::strlen(line);
    HIPA_CHECK(len + 1 < sizeof line || line[len - 1] == '\n',
               "" << path << ":" << lineno << ": line exceeds "
                    << (sizeof line - 2) << " characters");
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '#' || *p == '%' || *p == '\n' || *p == '\r' || *p == '\0') {
      continue;  // comment / blank line
    }
    const auto parse_id = [&](const char*& cur, const char* what) {
      while (*cur == ' ' || *cur == '\t') ++cur;
      HIPA_CHECK(*cur != '\0' && *cur != '\n' && *cur != '\r',
                 "" << path << ":" << lineno << ": missing " << what);
      HIPA_CHECK(*cur != '-', "" << path << ":" << lineno << ": negative "
                                   << what << " is not a vertex id");
      HIPA_CHECK(
          std::isdigit(static_cast<unsigned char>(*cur)) != 0,
          "" << path << ":" << lineno << ": malformed " << what
               << " (expected an unsigned integer, got '" << *cur << "')");
      errno = 0;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(cur, &end, 10);
      HIPA_CHECK(errno != ERANGE && v < kInvalidVid,
                 "" << path << ":" << lineno << ": " << what
                      << " overflows vid_t (max "
                      << (kInvalidVid - 1) << ")");
      cur = end;
      return static_cast<vid_t>(v);
    };
    Edge e;
    e.src = parse_id(p, "source id");
    e.dst = parse_id(p, "destination id");
    while (*p == ' ' || *p == '\t') ++p;
    HIPA_CHECK(*p == '\0' || *p == '\n' || *p == '\r',
               "" << path << ":" << lineno
                    << ": trailing garbage after the edge ('" << *p
                    << "...')");
    chunk.push_back(e);
    ++info.num_edges;
    info.num_vertices =
        std::max(info.num_vertices, std::max(e.src, e.dst) + 1);
    if (chunk.size() >= chunk_edges) {
      sink(std::span<const Edge>(chunk));
      chunk.clear();
    }
  }
  if (!chunk.empty()) sink(std::span<const Edge>(chunk));
  return info;
}

EdgeListFile read_edge_list(const std::string& path) {
  EdgeListFile out;
  const EdgeListInfo info = stream_edge_list(
      path, [&](std::span<const Edge> chunk) {
        out.edges.insert(out.edges.end(), chunk.begin(), chunk.end());
      });
  out.num_vertices = info.num_vertices;
  return out;
}

void write_edge_list(const std::string& path, vid_t num_vertices,
                     const std::vector<Edge>& edges) {
  FilePtr f = open_file(path, "w");
  std::fprintf(f.get(), "# hipa edge list: %u vertices, %zu edges\n",
               num_vertices, edges.size());
  for (const Edge& e : edges) {
    std::fprintf(f.get(), "%u %u\n", e.src, e.dst);
  }
}

void save_csr(const std::string& path, const CsrGraph& g) {
  FilePtr f = open_file(path, "wb");
  const std::uint64_t v = g.num_vertices();
  const std::uint64_t e = g.num_edges();
  const std::uint64_t sum = header_checksum(kMagicV2, v, e);
  write_exact(f.get(), &kMagicV2, sizeof kMagicV2);
  write_exact(f.get(), &v, sizeof v);
  write_exact(f.get(), &e, sizeof e);
  write_exact(f.get(), &sum, sizeof sum);
  write_exact(f.get(), g.offsets().data(), g.offsets().size_bytes());
  write_exact(f.get(), g.targets().data(), g.targets().size_bytes());
}

CsrGraph load_csr(const std::string& path) {
#if HIPA_IO_HAVE_MMAP
  CsrGraph g;
  if (load_csr_mmap(path, &g)) return g;
  // mmap refused (exotic filesystem, resource limits): same
  // validations on the buffered path.
#endif
  return load_csr_stdio(path);
}

// ---------------------------------------------------------------------------
// Segmented HCSR v3
// ---------------------------------------------------------------------------

std::vector<SegmentPlan> plan_segments(
    std::span<const std::uint64_t> in_degrees,
    std::size_t target_segment_bytes) {
  HIPA_CHECK(target_segment_bytes > 0,
             "plan_segments: target_segment_bytes must be >= 1");
  std::vector<SegmentPlan> out;
  const std::size_t n = in_degrees.size();
  std::size_t begin = 0;
  std::uint64_t edges = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint64_t with = edges + in_degrees[v];
    if (v > begin && segment_payload_bytes(v + 1 - begin, with) >
                         target_segment_bytes) {
      out.push_back(SegmentPlan{
          VertexRange{static_cast<vid_t>(begin), static_cast<vid_t>(v)},
          edges});
      begin = v;
      edges = in_degrees[v];
    } else {
      edges = with;
    }
  }
  if (n > 0) {
    out.push_back(SegmentPlan{
        VertexRange{static_cast<vid_t>(begin), static_cast<vid_t>(n)},
        edges});
  }
  return out;
}

struct SegmentedCsrWriter::Impl {
  std::string path;
  FilePtr file;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::vector<SegmentPlan> plans;
  std::vector<SegmentInfo> manifest;  ///< filled as payloads stream in
  std::size_t next = 0;
  std::uint64_t pos = 0;  ///< current file position (append-only phase)
  bool finished = false;
};

SegmentedCsrWriter::SegmentedCsrWriter(
    const std::string& path, std::uint64_t num_vertices,
    std::uint64_t num_edges, std::vector<SegmentPlan> plans,
    std::span<const std::uint32_t> out_degrees)
    : impl_(std::make_unique<Impl>()) {
  Impl& im = *impl_;
  im.path = path;
  im.num_vertices = num_vertices;
  im.num_edges = num_edges;
  im.plans = std::move(plans);

  // The plan must tile [0, V) contiguously and account for every edge.
  vid_t expect = 0;
  std::uint64_t edge_sum = 0;
  for (const SegmentPlan& p : im.plans) {
    HIPA_CHECK(p.range.begin == expect && p.range.end > p.range.begin,
               "segment plan is not a contiguous tiling of [0, "
                   << num_vertices << ")");
    expect = p.range.end;
    edge_sum += p.edges;
  }
  HIPA_CHECK(expect == num_vertices,
             "segment plan covers [0, " << expect << ") but the graph has "
                                        << num_vertices << " vertices");
  HIPA_CHECK(edge_sum == num_edges,
             "segment plan accounts for " << edge_sum << " of " << num_edges
                                          << " edges");
  HIPA_CHECK(out_degrees.size() == num_vertices,
             "out-degree table has " << out_degrees.size() << " entries for "
                                     << num_vertices << " vertices");

  im.file = open_file(path, "wb");
  const std::uint64_t s = im.plans.size();
  const std::uint64_t sum = header_checksum_v3(num_vertices, num_edges, s);
  write_exact(im.file.get(), &kMagicV3, sizeof kMagicV3);
  write_exact(im.file.get(), &num_vertices, sizeof num_vertices);
  write_exact(im.file.get(), &num_edges, sizeof num_edges);
  write_exact(im.file.get(), &s, sizeof s);
  write_exact(im.file.get(), &sum, sizeof sum);
  // Manifest placeholder (entries + manifest checksum), back-patched
  // by finish() once payload checksums are known.
  write_zeros(im.file.get(),
              s * kManifestEntryBytes + sizeof(std::uint64_t));
  write_exact(im.file.get(), out_degrees.data(),
              out_degrees.size() * sizeof(std::uint32_t));
  im.pos = kV3HeaderBytes + s * kManifestEntryBytes +
           sizeof(std::uint64_t) + num_vertices * sizeof(std::uint32_t);
  const std::size_t aligned = round_up_page(im.pos);
  write_zeros(im.file.get(), aligned - im.pos);
  im.pos = aligned;
}

SegmentedCsrWriter::~SegmentedCsrWriter() = default;

void SegmentedCsrWriter::write_segment(std::span<const eid_t> local_offsets,
                                       std::span<const vid_t> sources) {
  Impl& im = *impl_;
  HIPA_CHECK(!im.finished && im.next < im.plans.size(),
             "write_segment past the planned segment count");
  const SegmentPlan& plan = im.plans[im.next];
  HIPA_CHECK(local_offsets.size() ==
                 static_cast<std::size_t>(plan.range.size()) + 1,
             "segment " << im.next << ": offsets span has "
                        << local_offsets.size() << " entries, expected "
                        << plan.range.size() + 1);
  HIPA_CHECK(!local_offsets.empty() && local_offsets.front() == 0 &&
                 local_offsets.back() == plan.edges &&
                 sources.size() == plan.edges,
             "segment " << im.next
                        << ": offsets/sources disagree with the plan ("
                        << plan.edges << " edges)");
  SegmentInfo info;
  info.v_begin = plan.range.begin;
  info.v_end = plan.range.end;
  info.file_offset = im.pos;
  info.payload_bytes =
      segment_payload_bytes(plan.range.size(), plan.edges);
  std::uint64_t sum = fnv1a(local_offsets.data(),
                            local_offsets.size_bytes());
  sum = fnv1a(sources.data(), sources.size_bytes(), sum);
  info.checksum = sum;
  write_exact(im.file.get(), local_offsets.data(),
              local_offsets.size_bytes());
  write_exact(im.file.get(), sources.data(), sources.size_bytes());
  im.pos += info.payload_bytes;
  const std::size_t aligned = round_up_page(im.pos);
  write_zeros(im.file.get(), aligned - im.pos);
  im.pos = aligned;
  im.manifest.push_back(info);
  ++im.next;
}

void SegmentedCsrWriter::finish() {
  Impl& im = *impl_;
  HIPA_CHECK(!im.finished, "finish() called twice");
  HIPA_CHECK(im.next == im.plans.size(),
             "finish() before all " << im.plans.size()
                                    << " segments were written (got "
                                    << im.next << ")");
  // Serialize the manifest, checksum it, back-patch.
  std::vector<std::uint64_t> words;
  words.reserve(im.manifest.size() * 5);
  for (const SegmentInfo& e : im.manifest) {
    words.push_back(e.v_begin);
    words.push_back(e.v_end);
    words.push_back(e.file_offset);
    words.push_back(e.payload_bytes);
    words.push_back(e.checksum);
  }
  const std::uint64_t msum =
      fnv1a(words.data(), words.size() * sizeof(std::uint64_t));
  HIPA_CHECK(std::fseek(im.file.get(),
                        static_cast<long>(kV3HeaderBytes), SEEK_SET) == 0,
             "cannot seek '" << im.path << "' to back-patch the manifest");
  if (!words.empty()) {
    write_exact(im.file.get(), words.data(),
                words.size() * sizeof(std::uint64_t));
  }
  write_exact(im.file.get(), &msum, sizeof msum);
  HIPA_CHECK(std::fflush(im.file.get()) == 0 &&
                 std::ferror(im.file.get()) == 0,
             "write error finishing '" << im.path << "'");
  im.file.reset();
  im.finished = true;
}

void save_segmented_csr(const std::string& path, const Graph& g,
                        std::size_t target_segment_bytes) {
  const vid_t n = g.num_vertices();
  const CsrGraph& in = g.in;
  std::vector<std::uint64_t> in_degrees(n);
  const auto in_offsets = in.offsets();
  for (vid_t v = 0; v < n; ++v) {
    in_degrees[v] = in_offsets[v + 1] - in_offsets[v];
  }
  std::vector<std::uint32_t> out_degrees(n);
  for (vid_t v = 0; v < n; ++v) {
    out_degrees[v] = g.out.degree(v);
  }
  std::vector<SegmentPlan> plans =
      plan_segments(in_degrees, target_segment_bytes);

  SegmentedCsrWriter w(path, n, g.num_edges(), plans, out_degrees);
  std::vector<eid_t> local_offsets;
  for (const SegmentPlan& p : plans) {
    const vid_t nv = p.range.size();
    local_offsets.resize(static_cast<std::size_t>(nv) + 1);
    const eid_t base = in_offsets[p.range.begin];
    for (vid_t i = 0; i <= nv; ++i) {
      local_offsets[i] = in_offsets[p.range.begin + i] - base;
    }
    w.write_segment(local_offsets,
                    in.targets().subspan(base, p.edges));
  }
  w.finish();
}

struct SegmentedCsr::Impl {
  std::string path;
#if HIPA_IO_HAVE_MMAP
  int fd = -1;
#endif
  std::FILE* file = nullptr;  ///< non-mmap fallback (position-locked)
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::vector<SegmentInfo> segments;
  AlignedBuffer<std::uint32_t> out_degrees;
  std::size_t max_payload = 0;
  std::size_t total_payload = 0;

  mutable std::mutex mu;  ///< mappings + watermark + stdio position
  std::vector<const void*> mapped;          ///< per-segment base or null
  std::vector<std::unique_ptr<char[]>> mapped_copy;  ///< non-mmap maps
  std::size_t mapped_bytes = 0;
  std::size_t peak_mapped = 0;
  mutable std::atomic<std::uint64_t> fetched{0};

  ~Impl() {
#if HIPA_IO_HAVE_MMAP
    for (std::size_t s = 0; s < mapped.size(); ++s) {
      if (mapped[s] != nullptr && !mapped_copy[s]) {
        ::munmap(const_cast<void*>(mapped[s]), segments[s].payload_bytes);
      }
    }
    if (fd >= 0) ::close(fd);
#endif
    if (file != nullptr) std::fclose(file);
  }

  /// Positional read that never shares a file offset across threads
  /// (pread on POSIX; a mutex-guarded seek+read otherwise).
  void read_at(std::uint64_t offset, void* dst, std::size_t bytes) const {
#if HIPA_IO_HAVE_MMAP
    auto* p = static_cast<char*>(dst);
    std::size_t done = 0;
    while (done < bytes) {
      const ssize_t n = ::pread(fd, p + done, bytes - done,
                                static_cast<off_t>(offset + done));
      HIPA_CHECK(n > 0, "'" << path << "' truncated or unreadable at byte "
                            << (offset + done));
      done += static_cast<std::size_t>(n);
    }
#else
    std::lock_guard<std::mutex> lock(mu);
    HIPA_CHECK(std::fseek(file, static_cast<long>(offset), SEEK_SET) == 0,
               "cannot seek '" << path << "'");
    HIPA_CHECK(std::fread(dst, 1, bytes, file) == bytes,
               "'" << path << "' truncated or unreadable at byte "
                   << offset);
#endif
  }
};

SegmentedCsr::SegmentedCsr() : impl_(std::make_unique<Impl>()) {}
SegmentedCsr::~SegmentedCsr() = default;
SegmentedCsr::SegmentedCsr(SegmentedCsr&&) noexcept = default;
SegmentedCsr& SegmentedCsr::operator=(SegmentedCsr&&) noexcept = default;

SegmentedCsr SegmentedCsr::open(const std::string& path) {
  SegmentedCsr out;
  Impl& im = *out.impl_;
  im.path = path;

  std::uint64_t file_bytes = 0;
#if HIPA_IO_HAVE_MMAP
  im.fd = ::open(path.c_str(), O_RDONLY);
  HIPA_CHECK(im.fd >= 0, "cannot open '" << path << "' (rb)");
  struct stat st = {};
  HIPA_CHECK(::fstat(im.fd, &st) == 0, "cannot stat '" << path << "'");
  HIPA_CHECK(S_ISREG(st.st_mode), "'" << path << "' is not a regular file");
  file_bytes = static_cast<std::uint64_t>(st.st_size);
#else
  im.file = std::fopen(path.c_str(), "rb");
  HIPA_CHECK(im.file != nullptr, "cannot open '" << path << "' (rb)");
  HIPA_CHECK(std::fseek(im.file, 0, SEEK_END) == 0,
             "cannot seek '" << path << "'");
  const long end = std::ftell(im.file);
  HIPA_CHECK(end >= 0, "cannot size '" << path << "'");
  file_bytes = static_cast<std::uint64_t>(end);
#endif

  HIPA_CHECK(file_bytes >= 8, "'" << path
                                  << "' is not a segmented HCSR file: only "
                                  << file_bytes << " bytes");
  std::uint64_t head[5] = {};
  im.read_at(0, head, std::min<std::uint64_t>(file_bytes, sizeof head));
  HIPA_CHECK(head[0] != kMagicV1 && head[0] != kMagicV2,
             "'" << path << "' is a plain HCSR v"
                 << (head[0] == kMagicV1 ? 1 : 2)
                 << " file, not the segmented v3 container — load it with "
                    "load_csr, or re-shard it with hipa-convert / "
                    "save_segmented_csr for out-of-core runs");
  HIPA_CHECK(head[0] == kMagicV3,
             "'" << path << "' is not a segmented HCSR v3 file (magic 0x"
                 << std::hex << head[0] << std::dec
                 << ") — refusing to parse a foreign format");
  HIPA_CHECK(file_bytes >= kV3HeaderBytes,
             "'" << path << "' truncated inside the v3 header ("
                 << file_bytes << " of " << kV3HeaderBytes << " bytes)");
  im.num_vertices = head[1];
  im.num_edges = head[2];
  const std::uint64_t num_segments = head[3];
  const std::uint64_t want =
      header_checksum_v3(im.num_vertices, im.num_edges, num_segments);
  HIPA_CHECK(head[4] == want,
             "'" << path << "' v3 header checksum mismatch (file 0x"
                 << std::hex << head[4] << ", computed 0x" << want
                 << std::dec << ") — corrupted or foreign file");
  HIPA_CHECK(im.num_vertices < kInvalidVid,
             "'" << path << "' vertex count " << im.num_vertices
                 << " overflows vid_t — corrupted header");
  HIPA_CHECK(num_segments <= im.num_vertices || num_segments == 0,
             "'" << path << "' claims " << num_segments << " segments for "
                 << im.num_vertices << " vertices — corrupted header");

  const std::uint64_t manifest_bytes =
      num_segments * kManifestEntryBytes + sizeof(std::uint64_t);
  const std::uint64_t degrees_off = kV3HeaderBytes + manifest_bytes;
  const std::uint64_t degrees_bytes =
      im.num_vertices * sizeof(std::uint32_t);
  HIPA_CHECK(file_bytes >= degrees_off + degrees_bytes,
             "'" << path << "' truncated inside the manifest/degree "
                    "tables (" << file_bytes << " bytes on disk, header "
                    "implies at least " << (degrees_off + degrees_bytes)
                 << ")");

  std::vector<std::uint64_t> words(num_segments * 5 + 1);
  im.read_at(kV3HeaderBytes, words.data(), manifest_bytes);
  const std::uint64_t msum =
      fnv1a(words.data(), num_segments * kManifestEntryBytes);
  HIPA_CHECK(words.back() == msum,
             "'" << path << "' manifest checksum mismatch (file 0x"
                 << std::hex << words.back() << ", computed 0x" << msum
                 << std::dec << ") — corrupted manifest");

  im.segments.resize(num_segments);
  vid_t expect = 0;
  std::uint64_t edge_sum = 0;
  for (std::uint64_t s = 0; s < num_segments; ++s) {
    SegmentInfo& e = im.segments[s];
    e.v_begin = static_cast<vid_t>(words[s * 5 + 0]);
    e.v_end = static_cast<vid_t>(words[s * 5 + 1]);
    e.file_offset = words[s * 5 + 2];
    e.payload_bytes = words[s * 5 + 3];
    e.checksum = words[s * 5 + 4];
    HIPA_CHECK(e.v_begin == expect && e.v_end > e.v_begin &&
                   e.v_end <= im.num_vertices,
               "'" << path << "' segment " << s
                   << " range is not a contiguous tiling — corrupted "
                      "manifest");
    expect = e.v_end;
    const std::uint64_t header_part =
        (static_cast<std::uint64_t>(e.num_vertices()) + 1) * sizeof(eid_t);
    HIPA_CHECK(e.payload_bytes >= header_part &&
                   (e.payload_bytes - header_part) % sizeof(vid_t) == 0,
               "'" << path << "' segment " << s
                   << " payload size is inconsistent with its vertex "
                      "range — corrupted manifest");
    edge_sum += (e.payload_bytes - header_part) / sizeof(vid_t);
    HIPA_CHECK(e.file_offset % kPageSize == 0,
               "'" << path << "' segment " << s
                   << " payload is not page-aligned — corrupted manifest");
    HIPA_CHECK(e.file_offset + e.payload_bytes <= file_bytes,
               "'" << path << "' truncated inside segment " << s
                   << " payload (needs bytes [" << e.file_offset << ", "
                   << (e.file_offset + e.payload_bytes) << ") of "
                   << file_bytes << " on disk)");
    im.max_payload = std::max<std::size_t>(im.max_payload, e.payload_bytes);
    im.total_payload += e.payload_bytes;
  }
  HIPA_CHECK(expect == im.num_vertices,
             "'" << path << "' segments cover [0, " << expect
                 << ") but the header claims " << im.num_vertices
                 << " vertices — corrupted manifest");
  HIPA_CHECK(edge_sum == im.num_edges,
             "'" << path << "' segment payloads hold " << edge_sum
                 << " edges but the header claims " << im.num_edges
                 << " — corrupted manifest");

  im.out_degrees = AlignedBuffer<std::uint32_t>(im.num_vertices);
  if (im.num_vertices > 0) {
    im.read_at(degrees_off, im.out_degrees.data(), degrees_bytes);
  }
  std::uint64_t deg_sum = 0;
  for (std::size_t v = 0; v < im.out_degrees.size(); ++v) {
    deg_sum += im.out_degrees[v];
  }
  HIPA_CHECK(deg_sum == im.num_edges,
             "'" << path << "' out-degree table sums to " << deg_sum
                 << " but the header claims " << im.num_edges
                 << " edges — corrupted degree table");

  im.mapped.assign(num_segments, nullptr);
  im.mapped_copy.resize(num_segments);
  return out;
}

vid_t SegmentedCsr::num_vertices() const {
  return static_cast<vid_t>(impl_->num_vertices);
}
eid_t SegmentedCsr::num_edges() const { return impl_->num_edges; }
unsigned SegmentedCsr::num_segments() const {
  return static_cast<unsigned>(impl_->segments.size());
}
const SegmentInfo& SegmentedCsr::segment(unsigned s) const {
  HIPA_CHECK(s < impl_->segments.size(),
             "segment index " << s << " out of range");
  return impl_->segments[s];
}
std::span<const std::uint32_t> SegmentedCsr::out_degrees() const {
  return impl_->out_degrees.span();
}
std::size_t SegmentedCsr::max_payload_bytes() const {
  return impl_->max_payload;
}
std::size_t SegmentedCsr::total_payload_bytes() const {
  return impl_->total_payload;
}

void SegmentedCsr::read_segment(unsigned s, void* dst) const {
  const SegmentInfo& e = segment(s);
  impl_->read_at(e.file_offset, dst, e.payload_bytes);
  const std::uint64_t sum = fnv1a(dst, e.payload_bytes);
  HIPA_CHECK(sum == e.checksum,
             "'" << impl_->path << "' segment " << s
                 << " checksum mismatch (file manifest 0x" << std::hex
                 << e.checksum << ", payload 0x" << sum << std::dec
                 << ") — corrupted segment");
  impl_->fetched.fetch_add(e.payload_bytes, std::memory_order_relaxed);
}

SegmentedCsr::SegmentView SegmentedCsr::view(unsigned s,
                                             const void* payload) const {
  const SegmentInfo& e = segment(s);
  SegmentView v;
  v.range = VertexRange{e.v_begin, e.v_end};
  const auto* offsets = static_cast<const eid_t*>(payload);
  const std::size_t nv = e.num_vertices();
  v.offsets = std::span<const eid_t>(offsets, nv + 1);
  const auto* sources = reinterpret_cast<const vid_t*>(offsets + nv + 1);
  v.sources = std::span<const vid_t>(sources, offsets[nv]);
  return v;
}

const void* SegmentedCsr::map_segment(unsigned s) {
  const SegmentInfo& e = segment(s);
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  if (im.mapped[s] != nullptr) return im.mapped[s];
  const void* base = nullptr;
#if HIPA_IO_HAVE_MMAP
  void* map = ::mmap(nullptr, e.payload_bytes, PROT_READ, MAP_PRIVATE,
                     im.fd, static_cast<off_t>(e.file_offset));
  if (map != MAP_FAILED) {
    (void)::madvise(map, e.payload_bytes, MADV_WILLNEED);
    base = map;
  }
#endif
  if (base == nullptr) {
    // mmap refused (or unavailable): a private copy keeps the API
    // functional; accounting treats it exactly like a mapping.
    auto copy = std::make_unique<char[]>(e.payload_bytes);
    im.read_at(e.file_offset, copy.get(), e.payload_bytes);
    base = copy.get();
    im.mapped_copy[s] = std::move(copy);
  }
  const std::uint64_t sum = fnv1a(base, e.payload_bytes);
  if (sum != e.checksum) {
#if HIPA_IO_HAVE_MMAP
    if (!im.mapped_copy[s]) {
      ::munmap(const_cast<void*>(base), e.payload_bytes);
    }
#endif
    im.mapped_copy[s].reset();
    HIPA_CHECK(false, "'" << im.path << "' segment " << s
                          << " checksum mismatch (file manifest 0x"
                          << std::hex << e.checksum << ", payload 0x" << sum
                          << std::dec << ") — corrupted segment");
  }
  im.mapped[s] = base;
  im.mapped_bytes += e.payload_bytes;
  im.peak_mapped = std::max(im.peak_mapped, im.mapped_bytes);
  im.fetched.fetch_add(e.payload_bytes, std::memory_order_relaxed);
  return base;
}

void SegmentedCsr::unmap_segment(unsigned s) {
  const SegmentInfo& e = segment(s);
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  if (im.mapped[s] == nullptr) return;
#if HIPA_IO_HAVE_MMAP
  if (!im.mapped_copy[s]) {
    ::munmap(const_cast<void*>(im.mapped[s]), e.payload_bytes);
  }
#endif
  im.mapped_copy[s].reset();
  im.mapped[s] = nullptr;
  im.mapped_bytes -= e.payload_bytes;
}

std::size_t SegmentedCsr::mapped_bytes() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->mapped_bytes;
}
std::size_t SegmentedCsr::peak_mapped_bytes() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->peak_mapped;
}
std::uint64_t SegmentedCsr::bytes_fetched() const {
  return impl_->fetched.load(std::memory_order_relaxed);
}

}  // namespace hipa::graph
