#include "graph/builder.hpp"

#include <algorithm>

namespace hipa::graph {

CsrGraph build_csr(vid_t num_vertices, std::span<const Edge> edges,
                   const BuildOptions& opts) {
  std::vector<Edge> work;
  work.reserve(edges.size() * (opts.symmetrize ? 2 : 1));
  for (const Edge& e : edges) {
    HIPA_CHECK(e.src < num_vertices && e.dst < num_vertices,
               "edge (" << e.src << ',' << e.dst << ") out of range");
    if (opts.remove_self_loops && e.src == e.dst) continue;
    work.push_back(e);
    if (opts.symmetrize && e.src != e.dst) {
      work.push_back(Edge{e.dst, e.src});
    }
  }

  // Counting sort by source: one pass to count, one to place.
  AlignedBuffer<eid_t> offsets(static_cast<std::size_t>(num_vertices) + 1);
  offsets.fill_zero();
  for (const Edge& e : work) offsets[e.src + 1]++;
  for (std::size_t v = 1; v <= num_vertices; ++v) offsets[v] += offsets[v - 1];

  AlignedBuffer<vid_t> targets(work.size());
  {
    std::vector<eid_t> cursor(offsets.data(), offsets.data() + num_vertices);
    for (const Edge& e : work) targets[cursor[e.src]++] = e.dst;
  }

  if (opts.sort_neighbors || opts.remove_duplicates) {
    for (vid_t v = 0; v < num_vertices; ++v) {
      std::sort(targets.data() + offsets[v], targets.data() + offsets[v + 1]);
    }
  }

  if (opts.remove_duplicates) {
    // Compact in place, rebuilding offsets.
    AlignedBuffer<eid_t> new_offsets(static_cast<std::size_t>(num_vertices) +
                                     1);
    eid_t write = 0;
    new_offsets[0] = 0;
    for (vid_t v = 0; v < num_vertices; ++v) {
      vid_t prev = kInvalidVid;
      for (eid_t i = offsets[v]; i < offsets[v + 1]; ++i) {
        if (targets[i] != prev) {
          targets[write++] = targets[i];
          prev = targets[write - 1];
        }
      }
      new_offsets[v + 1] = write;
    }
    AlignedBuffer<vid_t> compact(static_cast<std::size_t>(write));
    std::copy(targets.data(), targets.data() + write, compact.data());
    return CsrGraph(std::move(new_offsets), std::move(compact));
  }

  return CsrGraph(std::move(offsets), std::move(targets));
}

Graph build_graph(vid_t num_vertices, std::span<const Edge> edges,
                  const BuildOptions& opts) {
  return Graph::from_out(build_csr(num_vertices, edges, opts));
}

}  // namespace hipa::graph
