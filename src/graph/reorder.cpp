#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "graph/builder.hpp"

namespace hipa::graph {

Permutation identity_permutation(vid_t n) {
  Permutation perm(n);
  std::iota(perm.begin(), perm.end(), vid_t{0});
  return perm;
}

Permutation degree_sort_permutation(const CsrGraph& out) {
  const vid_t n = out.num_vertices();
  std::vector<vid_t> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), vid_t{0});
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](vid_t a, vid_t b) {
                     return out.degree(a) > out.degree(b);
                   });
  Permutation perm(n);
  for (vid_t new_id = 0; new_id < n; ++new_id) {
    perm[by_degree[new_id]] = new_id;
  }
  return perm;
}

Permutation hub_cluster_permutation(const CsrGraph& out) {
  const vid_t n = out.num_vertices();
  const double avg =
      n == 0 ? 0.0
             : static_cast<double>(out.num_edges()) / static_cast<double>(n);
  Permutation perm(n);
  vid_t next_hot = 0;
  vid_t hot_count = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (out.degree(v) > avg) ++hot_count;
  }
  vid_t next_cold = hot_count;
  for (vid_t v = 0; v < n; ++v) {
    perm[v] = (out.degree(v) > avg) ? next_hot++ : next_cold++;
  }
  return perm;
}

Graph apply_permutation(const Graph& g, const Permutation& perm) {
  HIPA_CHECK(perm.size() == g.num_vertices(),
             "permutation size mismatches vertex count");
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  const CsrGraph& out = g.out;
  for (vid_t v = 0; v < out.num_vertices(); ++v) {
    for (vid_t u : out.neighbors(v)) {
      edges.push_back(Edge{perm[v], perm[u]});
    }
  }
  return build_graph(g.num_vertices(), edges, BuildOptions{});
}

bool is_valid_permutation(const Permutation& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (vid_t p : perm) {
    if (p >= perm.size() || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

}  // namespace hipa::graph
