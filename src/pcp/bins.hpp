// PCPM message bins with inter-edge compression (paper §3.4, ref [21]).
//
// All edges from one source vertex v into one destination partition q
// are compressed into a single *message* (paper Fig. 4: inter-edges
// (v1,v6),(v1,v7) become Edge(v1,p1)). During scatter, the thread
// owning v's partition writes one value per message; during gather, the
// thread owning q propagates each message's value to its destination
// vertices through partition-local intra-edges.
//
// Two orderings coexist:
//  * scatter order — pairs sorted by (src_part, dst_part); src_list is
//    laid out this way so a scatter thread streams its sources.
//  * gather order — pairs grouped by dst_part; the value buffer,
//    dst_begin and dst_list are laid out this way so a gather thread
//    streams its inbox. This also keeps each NUMA node's slice of every
//    array contiguous (one registered range per node, paper §3.4's
//    "contiguous virtual address space").
//
// Destination-list encodings (the gather phase's dominant stream):
//  * wide    — one 32-bit entry per edge: 31-bit global vertex id,
//    MSB flags the first destination of a message.
//  * compact — one 16-bit entry per edge: 15-bit *partition-local*
//    offset (dst vertex id minus the destination partition's first
//    vertex), bit 15 flags a new message. Valid whenever every
//    partition holds <= 2^15 vertices: true for partitions up to
//    128 KB of 4 B attributes, i.e. up to ½ L2 — and for *every* scaled
//    operating point the benches use (256 KB-eq / 64 ≈ 1 Ki vertices).
//    Halves the bytes-per-edge streamed through the cache hierarchy in
//    both backends (the PCPM bytes-per-edge lever of ref [21]).
// build_bins picks compact automatically and falls back to wide when a
// partition exceeds 2^15 vertices; callers can force either encoding.
#pragma once

#include <cstdint>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "graph/csr.hpp"
#include "partition/cache_partitions.hpp"

namespace hipa::pcp {

/// One (source partition, destination partition) bin.
struct PairInfo {
  std::uint32_t src_part = 0;
  std::uint32_t dst_part = 0;
  eid_t msg_count = 0;  ///< compressed messages in this bin
  eid_t dst_count = 0;  ///< raw edges in this bin
  eid_t src_off = 0;    ///< first index into src_list (scatter order)
  eid_t value_off = 0;  ///< first message id (gather order; indexes the
                        ///< value buffer and dst_begin)
  eid_t dst_off = 0;    ///< first index into dst_list (gather order)
};

/// Destination-list encoding request for build_bins.
enum class DstEncoding {
  kAuto,     ///< compact when every partition fits 2^15 vertices
  kWide,     ///< force 32-bit global-id entries
  kCompact,  ///< force 16-bit entries (error if a partition is too big)
};

/// Immutable bin structure for one (graph, partitioning).
class PcpmBins {
 public:
  PcpmBins() = default;

  [[nodiscard]] std::uint32_t num_partitions() const { return num_parts_; }
  [[nodiscard]] eid_t total_messages() const { return total_msgs_; }
  [[nodiscard]] eid_t total_dests() const { return total_dests_; }
  /// Edges per message — the paper's compression payoff (§4.3: "the
  /// larger a partition, the better the compression").
  [[nodiscard]] double compression_ratio() const {
    return total_msgs_ == 0 ? 0.0
                            : static_cast<double>(total_dests_) /
                                  static_cast<double>(total_msgs_);
  }

  [[nodiscard]] const std::vector<PairInfo>& pairs() const { return pairs_; }
  /// Pairs with src_part == p: pairs()[src_pair_begin()[p] ..
  /// src_pair_begin()[p+1]).
  [[nodiscard]] const std::vector<std::uint32_t>& src_pair_begin() const {
    return src_pair_begin_;
  }
  /// Pair ids grouped by dst_part: dst_pair_index()[dst_pair_begin()[q]
  /// .. dst_pair_begin()[q+1]).
  [[nodiscard]] const std::vector<std::uint32_t>& dst_pair_index() const {
    return dst_pair_index_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& dst_pair_begin() const {
    return dst_pair_begin_;
  }

  /// Message source vertices, scatter order.
  [[nodiscard]] std::span<const vid_t> src_list() const {
    return src_list_.span();
  }

  /// True when the destination list uses the 16-bit compact encoding.
  [[nodiscard]] bool compact() const { return compact_; }
  /// Bytes of one destination-list entry under the active encoding.
  [[nodiscard]] std::size_t dst_entry_bytes() const {
    return compact_ ? sizeof(std::uint16_t) : sizeof(vid_t);
  }

  /// Wide destination list (gather order); only valid when !compact().
  /// The MSB marks the first destination of each message (the PCPM
  /// trick of ref [21]): a gather walks one pair's slice linearly,
  /// bumping its message index at every flagged entry — no per-message
  /// offset array needed.
  [[nodiscard]] std::span<const vid_t> dst_list() const {
    return dst_list_.span();
  }
  /// Compact destination list (gather order); only valid when
  /// compact(). Bit 15 is the new-message flag; bits 0..14 hold the
  /// partition-local vertex offset (add the destination partition's
  /// first vertex id to recover the global id).
  [[nodiscard]] std::span<const std::uint16_t> dst_list16() const {
    return dst_list16_.span();
  }

  // --- wide encoding ------------------------------------------------------
  /// MSB flag: this dst_list entry starts a new message.
  static constexpr vid_t kMsgStart = vid_t{1} << 31;
  [[nodiscard]] static constexpr bool is_msg_start(vid_t packed) {
    return (packed & kMsgStart) != 0;
  }
  [[nodiscard]] static constexpr vid_t dst_vertex(vid_t packed) {
    return packed & ~kMsgStart;
  }

  // --- compact encoding ---------------------------------------------------
  /// Bit-15 flag: this dst_list16 entry starts a new message.
  static constexpr std::uint16_t kMsgStart16 = std::uint16_t{1} << 15;
  static constexpr std::uint16_t kLocalMask16 = kMsgStart16 - 1;
  /// Largest partition (in vertices) the 15-bit offset can address.
  static constexpr vid_t kMaxCompactPartition = vid_t{1} << 15;
  [[nodiscard]] static constexpr bool is_msg_start(std::uint16_t packed) {
    return (packed & kMsgStart16) != 0;
  }
  [[nodiscard]] static constexpr vid_t local_offset(std::uint16_t packed) {
    return packed & kLocalMask16;
  }

  // --- contiguous per-node slice helpers (for NUMA registration) ---------
  /// [first, last) src_list indices for source partitions [pb, pe).
  [[nodiscard]] std::pair<eid_t, eid_t> src_slice(std::uint32_t pb,
                                                  std::uint32_t pe) const;
  /// [first, last) message ids for destination partitions [qb, qe).
  [[nodiscard]] std::pair<eid_t, eid_t> msg_slice(std::uint32_t qb,
                                                  std::uint32_t qe) const;
  /// [first, last) dst_list indices for destination partitions [qb, qe).
  /// Entry-granular; multiply by dst_entry_bytes() for byte ranges.
  [[nodiscard]] std::pair<eid_t, eid_t> dst_slice(std::uint32_t qb,
                                                  std::uint32_t qe) const;

  /// Bytes of metadata built (for preprocessing-cost accounting).
  [[nodiscard]] std::uint64_t footprint_bytes() const;

  friend PcpmBins build_bins(const graph::CsrGraph& out,
                             const part::CachePartitioning& parts,
                             DstEncoding enc);

 private:
  std::uint32_t num_parts_ = 0;
  eid_t total_msgs_ = 0;
  eid_t total_dests_ = 0;
  bool compact_ = false;
  std::vector<PairInfo> pairs_;
  std::vector<std::uint32_t> src_pair_begin_;
  std::vector<std::uint32_t> dst_pair_index_;
  std::vector<std::uint32_t> dst_pair_begin_;
  AlignedBuffer<vid_t> src_list_;
  AlignedBuffer<vid_t> dst_list_;            // wide encoding
  AlignedBuffer<std::uint16_t> dst_list16_;  // compact encoding
};

/// Build bins for a graph under a fixed-|P| partitioning. Requires the
/// CSR's neighbor lists to be sorted (builder default) so each (v, q)
/// message's destinations are consecutive. `enc` selects the
/// destination-list encoding (default: compact when possible).
[[nodiscard]] PcpmBins build_bins(const graph::CsrGraph& out,
                                  const part::CachePartitioning& parts,
                                  DstEncoding enc = DstEncoding::kAuto);

}  // namespace hipa::pcp
