// PCPM message bins with inter-edge compression (paper §3.4, ref [21]).
//
// All edges from one source vertex v into one destination partition q
// are compressed into a single *message* (paper Fig. 4: inter-edges
// (v1,v6),(v1,v7) become Edge(v1,p1)). During scatter, the thread
// owning v's partition writes one value per message; during gather, the
// thread owning q propagates each message's value to its destination
// vertices through partition-local intra-edges.
//
// Two orderings coexist:
//  * scatter order — pairs sorted by (src_part, dst_part); src_list is
//    laid out this way so a scatter thread streams its sources.
//  * gather order — pairs grouped by dst_part; the value buffer,
//    dst_begin and dst_list are laid out this way so a gather thread
//    streams its inbox. This also keeps each NUMA node's slice of every
//    array contiguous (one registered range per node, paper §3.4's
//    "contiguous virtual address space").
#pragma once

#include <cstdint>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "graph/csr.hpp"
#include "partition/cache_partitions.hpp"

namespace hipa::pcp {

/// One (source partition, destination partition) bin.
struct PairInfo {
  std::uint32_t src_part = 0;
  std::uint32_t dst_part = 0;
  eid_t msg_count = 0;  ///< compressed messages in this bin
  eid_t dst_count = 0;  ///< raw edges in this bin
  eid_t src_off = 0;    ///< first index into src_list (scatter order)
  eid_t value_off = 0;  ///< first message id (gather order; indexes the
                        ///< value buffer and dst_begin)
  eid_t dst_off = 0;    ///< first index into dst_list (gather order)
};

/// Immutable bin structure for one (graph, partitioning).
class PcpmBins {
 public:
  PcpmBins() = default;

  [[nodiscard]] std::uint32_t num_partitions() const { return num_parts_; }
  [[nodiscard]] eid_t total_messages() const { return total_msgs_; }
  [[nodiscard]] eid_t total_dests() const { return total_dests_; }
  /// Edges per message — the paper's compression payoff (§4.3: "the
  /// larger a partition, the better the compression").
  [[nodiscard]] double compression_ratio() const {
    return total_msgs_ == 0 ? 0.0
                            : static_cast<double>(total_dests_) /
                                  static_cast<double>(total_msgs_);
  }

  [[nodiscard]] const std::vector<PairInfo>& pairs() const { return pairs_; }
  /// Pairs with src_part == p: pairs()[src_pair_begin()[p] ..
  /// src_pair_begin()[p+1]).
  [[nodiscard]] const std::vector<std::uint32_t>& src_pair_begin() const {
    return src_pair_begin_;
  }
  /// Pair ids grouped by dst_part: dst_pair_index()[dst_pair_begin()[q]
  /// .. dst_pair_begin()[q+1]).
  [[nodiscard]] const std::vector<std::uint32_t>& dst_pair_index() const {
    return dst_pair_index_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& dst_pair_begin() const {
    return dst_pair_begin_;
  }

  /// Message source vertices, scatter order.
  [[nodiscard]] std::span<const vid_t> src_list() const {
    return src_list_.span();
  }
  /// Destination vertices in gather order. The MSB marks the first
  /// destination of each message (the PCPM trick of ref [21]): a
  /// gather walks one pair's slice linearly, bumping its message index
  /// at every flagged entry — no per-message offset array needed.
  [[nodiscard]] std::span<const vid_t> dst_list() const {
    return dst_list_.span();
  }

  /// MSB flag: this dst_list entry starts a new message.
  static constexpr vid_t kMsgStart = vid_t{1} << 31;
  [[nodiscard]] static constexpr bool is_msg_start(vid_t packed) {
    return (packed & kMsgStart) != 0;
  }
  [[nodiscard]] static constexpr vid_t dst_vertex(vid_t packed) {
    return packed & ~kMsgStart;
  }

  // --- contiguous per-node slice helpers (for NUMA registration) ---------
  /// [first, last) src_list indices for source partitions [pb, pe).
  [[nodiscard]] std::pair<eid_t, eid_t> src_slice(std::uint32_t pb,
                                                  std::uint32_t pe) const;
  /// [first, last) message ids for destination partitions [qb, qe).
  [[nodiscard]] std::pair<eid_t, eid_t> msg_slice(std::uint32_t qb,
                                                  std::uint32_t qe) const;
  /// [first, last) dst_list indices for destination partitions [qb, qe).
  [[nodiscard]] std::pair<eid_t, eid_t> dst_slice(std::uint32_t qb,
                                                  std::uint32_t qe) const;

  /// Bytes of metadata built (for preprocessing-cost accounting).
  [[nodiscard]] std::uint64_t footprint_bytes() const;

  friend PcpmBins build_bins(const graph::CsrGraph& out,
                             const part::CachePartitioning& parts);

 private:
  std::uint32_t num_parts_ = 0;
  eid_t total_msgs_ = 0;
  eid_t total_dests_ = 0;
  std::vector<PairInfo> pairs_;
  std::vector<std::uint32_t> src_pair_begin_;
  std::vector<std::uint32_t> dst_pair_index_;
  std::vector<std::uint32_t> dst_pair_begin_;
  AlignedBuffer<vid_t> src_list_;
  AlignedBuffer<vid_t> dst_list_;
};

/// Build bins for a graph under a fixed-|P| partitioning. Requires the
/// CSR's neighbor lists to be sorted (builder default) so each (v, q)
/// message's destinations are consecutive.
[[nodiscard]] PcpmBins build_bins(const graph::CsrGraph& out,
                                  const part::CachePartitioning& parts);

}  // namespace hipa::pcp
