#include "pcp/bins.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hipa::pcp {

std::pair<eid_t, eid_t> PcpmBins::src_slice(std::uint32_t pb,
                                            std::uint32_t pe) const {
  HIPA_CHECK(pb <= pe && pe <= num_parts_);
  const std::uint32_t first_pair = src_pair_begin_[pb];
  const std::uint32_t last_pair = src_pair_begin_[pe];
  if (first_pair == last_pair) return {0, 0};
  const PairInfo& first = pairs_[first_pair];
  const PairInfo& last = pairs_[last_pair - 1];
  return {first.src_off, last.src_off + last.msg_count};
}

std::pair<eid_t, eid_t> PcpmBins::msg_slice(std::uint32_t qb,
                                            std::uint32_t qe) const {
  HIPA_CHECK(qb <= qe && qe <= num_parts_);
  const std::uint32_t first_idx = dst_pair_begin_[qb];
  const std::uint32_t last_idx = dst_pair_begin_[qe];
  if (first_idx == last_idx) return {0, 0};
  const PairInfo& first = pairs_[dst_pair_index_[first_idx]];
  const PairInfo& last = pairs_[dst_pair_index_[last_idx - 1]];
  return {first.value_off, last.value_off + last.msg_count};
}

std::pair<eid_t, eid_t> PcpmBins::dst_slice(std::uint32_t qb,
                                            std::uint32_t qe) const {
  HIPA_CHECK(qb <= qe && qe <= num_parts_);
  const std::uint32_t first_idx = dst_pair_begin_[qb];
  const std::uint32_t last_idx = dst_pair_begin_[qe];
  if (first_idx == last_idx) return {0, 0};
  const PairInfo& first = pairs_[dst_pair_index_[first_idx]];
  const PairInfo& last = pairs_[dst_pair_index_[last_idx - 1]];
  return {first.dst_off, last.dst_off + last.dst_count};
}

std::uint64_t PcpmBins::footprint_bytes() const {
  return pairs_.size() * sizeof(PairInfo) +
         (src_pair_begin_.size() + dst_pair_index_.size() +
          dst_pair_begin_.size()) *
             sizeof(std::uint32_t) +
         src_list_.size() * sizeof(vid_t) +
         total_dests_ * dst_entry_bytes();
}

PcpmBins build_bins(const graph::CsrGraph& out,
                    const part::CachePartitioning& parts, DstEncoding enc) {
  HIPA_CHECK(out.num_vertices() == parts.num_vertices(),
             "partitioning built for a different graph");
  PcpmBins bins;
  const std::uint32_t num_parts = parts.num_partitions();
  bins.num_parts_ = num_parts;
  bins.total_dests_ = out.num_edges();

  // ---- encoding choice: a 15-bit partition-local offset must address
  // every vertex of the largest partition (fixed-|P| partitioning, so
  // vertices_per_partition() bounds them all).
  const bool compact_fits =
      parts.vertices_per_partition() <= PcpmBins::kMaxCompactPartition;
  switch (enc) {
    case DstEncoding::kAuto:
      bins.compact_ = compact_fits;
      break;
    case DstEncoding::kWide:
      bins.compact_ = false;
      break;
    case DstEncoding::kCompact:
      HIPA_CHECK(compact_fits,
                 "compact encoding forced but a partition holds "
                     << parts.vertices_per_partition() << " > "
                     << PcpmBins::kMaxCompactPartition << " vertices");
      bins.compact_ = true;
      break;
  }

  // ---- pass 1: per source partition, count edges and messages per
  // destination partition; emit pairs in (p, q) order.
  bins.src_pair_begin_.assign(num_parts + 1, 0);
  {
    std::vector<eid_t> row_edges(num_parts, 0);
    std::vector<eid_t> row_msgs(num_parts, 0);
    std::vector<std::uint32_t> touched;  // q's seen this row
    touched.reserve(256);
    std::vector<vid_t> last_src(num_parts, kInvalidVid);

    for (std::uint32_t p = 0; p < num_parts; ++p) {
      const VertexRange r = parts.range(p);
      for (vid_t v = r.begin; v < r.end; ++v) {
        for (vid_t u : out.neighbors(v)) {
          const std::uint32_t q = parts.partition_of(u);
          if (row_edges[q] == 0) touched.push_back(q);
          ++row_edges[q];
          if (last_src[q] != v) {
            last_src[q] = v;
            ++row_msgs[q];
          }
        }
      }
      std::sort(touched.begin(), touched.end());
      for (std::uint32_t q : touched) {
        PairInfo info;
        info.src_part = p;
        info.dst_part = q;
        info.msg_count = row_msgs[q];
        info.dst_count = row_edges[q];
        bins.pairs_.push_back(info);
        row_edges[q] = 0;
        row_msgs[q] = 0;
        last_src[q] = kInvalidVid;
      }
      touched.clear();
      bins.src_pair_begin_[p + 1] =
          static_cast<std::uint32_t>(bins.pairs_.size());
    }
  }

  // ---- scatter-order source offsets.
  eid_t src_cursor = 0;
  for (PairInfo& pr : bins.pairs_) {
    pr.src_off = src_cursor;
    src_cursor += pr.msg_count;
  }
  bins.total_msgs_ = src_cursor;

  // ---- gather-order grouping and offsets (stable counting sort by q).
  bins.dst_pair_begin_.assign(num_parts + 1, 0);
  for (const PairInfo& pr : bins.pairs_) {
    ++bins.dst_pair_begin_[pr.dst_part + 1];
  }
  for (std::uint32_t q = 0; q < num_parts; ++q) {
    bins.dst_pair_begin_[q + 1] += bins.dst_pair_begin_[q];
  }
  bins.dst_pair_index_.resize(bins.pairs_.size());
  {
    std::vector<std::uint32_t> cursor(bins.dst_pair_begin_.begin(),
                                      bins.dst_pair_begin_.end() - 1);
    for (std::uint32_t k = 0;
         k < static_cast<std::uint32_t>(bins.pairs_.size()); ++k) {
      bins.dst_pair_index_[cursor[bins.pairs_[k].dst_part]++] = k;
    }
  }
  {
    eid_t value_cursor = 0;
    eid_t dst_cursor = 0;
    for (std::uint32_t idx : bins.dst_pair_index_) {
      PairInfo& pr = bins.pairs_[idx];
      pr.value_off = value_cursor;
      pr.dst_off = dst_cursor;
      value_cursor += pr.msg_count;
      dst_cursor += pr.dst_count;
    }
    HIPA_CHECK(value_cursor == bins.total_msgs_ &&
                   dst_cursor == bins.total_dests_,
               "gather-order offsets inconsistent");
  }

  // ---- pass 2: fill src_list (scatter order) and the flag-packed
  // destination list (gather order) in one row scan with per-pair
  // cursors. The compact path writes 16-bit partition-local offsets;
  // the wide path 32-bit global ids — same layout, half the bytes.
  bins.src_list_ = AlignedBuffer<vid_t>(bins.total_msgs_);
  if (bins.compact_) {
    bins.dst_list16_ = AlignedBuffer<std::uint16_t>(bins.total_dests_);
  } else {
    bins.dst_list_ = AlignedBuffer<vid_t>(bins.total_dests_);
  }
  {
    std::vector<eid_t> src_cur(bins.pairs_.size());
    std::vector<eid_t> dst_cur(bins.pairs_.size());
    for (std::size_t k = 0; k < bins.pairs_.size(); ++k) {
      src_cur[k] = bins.pairs_[k].src_off;
      dst_cur[k] = bins.pairs_[k].dst_off;
    }
    // Row-local map q -> pair index.
    std::vector<std::uint32_t> row_pair(num_parts, ~0u);
    std::vector<vid_t> last_src(num_parts, kInvalidVid);
    const vid_t per_part = parts.vertices_per_partition();

    for (std::uint32_t p = 0; p < num_parts; ++p) {
      for (std::uint32_t k = bins.src_pair_begin_[p];
           k < bins.src_pair_begin_[p + 1]; ++k) {
        row_pair[bins.pairs_[k].dst_part] = k;
      }
      const VertexRange r = parts.range(p);
      for (vid_t v = r.begin; v < r.end; ++v) {
        for (vid_t u : out.neighbors(v)) {
          const std::uint32_t q = parts.partition_of(u);
          const std::uint32_t k = row_pair[q];
          bool starts_msg = false;
          if (last_src[q] != v) {
            last_src[q] = v;
            bins.src_list_[src_cur[k]++] = v;
            starts_msg = true;
          }
          if (bins.compact_) {
            const vid_t local = u - q * per_part;
            bins.dst_list16_[dst_cur[k]++] = static_cast<std::uint16_t>(
                local | (starts_msg ? PcpmBins::kMsgStart16 : 0));
          } else {
            HIPA_CHECK((u & PcpmBins::kMsgStart) == 0,
                       "vertex ids must fit in 31 bits for PCPM packing");
            bins.dst_list_[dst_cur[k]++] =
                u | (starts_msg ? PcpmBins::kMsgStart : 0);
          }
        }
      }
      // Reset row-local state.
      for (std::uint32_t k = bins.src_pair_begin_[p];
           k < bins.src_pair_begin_[p + 1]; ++k) {
        row_pair[bins.pairs_[k].dst_part] = ~0u;
        last_src[bins.pairs_[k].dst_part] = kInvalidVid;
      }
    }
    // Verify cursors landed exactly on the next pair's offsets.
    for (std::size_t k = 0; k < bins.pairs_.size(); ++k) {
      HIPA_CHECK(src_cur[k] ==
                     bins.pairs_[k].src_off + bins.pairs_[k].msg_count,
                 "src cursor mismatch on pair " << k);
      HIPA_CHECK(dst_cur[k] ==
                     bins.pairs_[k].dst_off + bins.pairs_[k].dst_count,
                 "dst cursor mismatch on pair " << k);
    }
  }
  return bins;
}

}  // namespace hipa::pcp
