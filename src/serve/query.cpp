#include "serve/query.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace hipa::serve {

std::string_view query_kind_name(QueryKind k) {
  switch (k) {
    case QueryKind::kPoint:
      return "point";
    case QueryKind::kBatch:
      return "batch";
    case QueryKind::kTopK:
      return "topk";
  }
  return "?";
}

rank_t point_lookup(const Snapshot& snap, vid_t v) {
  HIPA_CHECK(v < snap.num_vertices(),
             "point lookup vertex " << v << " out of range (n = "
                                    << snap.num_vertices() << ")");
  return snap.rank_of(v);
}

void batch_lookup(const Snapshot& snap, std::span<const vid_t> vertices,
                  std::span<rank_t> out) {
  HIPA_CHECK(out.size() == vertices.size(),
             "batch lookup output size mismatch");
  const std::span<const rank_t> ranks = snap.ranks();
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const vid_t v = vertices[i];
    HIPA_CHECK(v < ranks.size(), "batch lookup vertex "
                                     << v << " out of range (n = "
                                     << ranks.size() << ")");
    out[i] = ranks[v];
  }
}

std::vector<TopKEntry> topk_query(const Snapshot& snap, const TopKQuery& q,
                                  unsigned node) {
  if (q.k == 0) return {};
  const TopKIndex& index = snap.topk();
  const unsigned index_node =
      index.num_nodes() == 0 ? 0 : node % index.num_nodes();
  if (q.global()) {
    // The index holds the global top-`index.k()` in every replica; any
    // request no deeper than that is a pure node-local copy.
    if (q.k <= index.k() && index.num_nodes() > 0) {
      const std::span<const TopKEntry> rep = index.replica(index_node);
      const std::size_t take = std::min<std::size_t>(q.k, rep.size());
      return {rep.begin(), rep.begin() + static_cast<std::ptrdiff_t>(take)};
    }
    return partial_top_k(snap.ranks(), VertexRange{0, snap.num_vertices()},
                         q.k);
  }
  HIPA_CHECK(q.range.begin <= q.range.end &&
                 q.range.end <= snap.num_vertices(),
             "top-k range [" << q.range.begin << ", " << q.range.end
                             << ") exceeds snapshot vertices "
                             << snap.num_vertices());
  return partial_top_k(snap.ranks(), q.range, q.k);
}

QueryResult evaluate(const Snapshot& snap, const Query& q, unsigned node) {
  QueryResult out;
  out.epoch = snap.epoch();
  switch (q.kind) {
    case QueryKind::kPoint:
      out.ranks.push_back(point_lookup(snap, q.vertex));
      break;
    case QueryKind::kBatch:
      out.ranks.assign(q.vertices.size(), rank_t{});
      batch_lookup(snap, q.vertices, out.ranks);
      break;
    case QueryKind::kTopK:
      out.topk = topk_query(snap, q.topk, node);
      break;
  }
  return out;
}

LatencySummary LatencyRecorder::summarize() const {
  LatencySummary s;
  s.count = samples_.size();
  if (samples_.empty()) return s;
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  s.mean_seconds =
      std::accumulate(sorted.begin(), sorted.end(), 0.0) /
      static_cast<double>(sorted.size());
  // Nearest-rank percentile: value at ceil(p * n) in 1-based order.
  auto pct = [&](double p) {
    const std::size_t n = sorted.size();
    std::size_t rank = static_cast<std::size_t>(
        p * static_cast<double>(n) + 0.999999);
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    return sorted[rank - 1];
  };
  s.p50_seconds = pct(0.50);
  s.p95_seconds = pct(0.95);
  s.p99_seconds = pct(0.99);
  s.p999_seconds = pct(0.999);
  s.max_seconds = sorted.back();
  return s;
}

}  // namespace hipa::serve
