#include "serve/service.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "runtime/affinity.hpp"
#include "runtime/trace.hpp"
#include "serve/metrics_export.hpp"

namespace hipa::serve {

namespace {

/// CPU for worker `w`, which serves store node `node`: the w-th CPU of
/// that node (wrapping), so multiple workers mapped onto one host node
/// spread over its cores. -1 = no pinning.
int worker_cpu(unsigned w, unsigned node, bool pin) {
  if (!pin) return -1;
  const runtime::HostTopology& topo = runtime::topology();
  const auto& cpus = topo.node_cpus[node % topo.num_nodes()];
  if (cpus.empty()) return -1;
  return static_cast<int>(cpus[w % cpus.size()]);
}

}  // namespace

void RankService::Latch::arrive() {
  std::lock_guard<std::mutex> lock(mutex);
  if (--remaining == 0) cv.notify_all();
}

void RankService::Latch::wait() {
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [this] { return remaining == 0; });
}

RankService::RankService(const SnapshotStore& store, ServiceOptions opt)
    : store_(store), opt_(std::move(opt)) {
  const unsigned nodes = store_.num_nodes();
  HIPA_CHECK(nodes >= 1, "store has no nodes");
  timeline_.reset(nodes);
  if (!opt_.trace_path.empty()) timeline_.enable_spans();
  latency_.reserve(opt_.latency_reserve);

  namespace m = runtime::metrics;
  m::MetricsRegistry* reg = nullptr;
  if (opt_.metrics) {
    reg = opt_.registry != nullptr ? opt_.registry
                                   : &m::MetricsRegistry::global();
    const QueryKind kinds[] = {QueryKind::kPoint, QueryKind::kBatch,
                               QueryKind::kTopK};
    for (const QueryKind k : kinds) {
      const auto i = static_cast<unsigned>(k);
      const m::MetricLabel label{"class", std::string(query_kind_name(k))};
      metrics_.requests[i] = reg->counter(
          "hipa_queries_total", "Queries answered by class", label);
      metrics_.latency[i] = reg->histogram(
          "hipa_query_latency_seconds", "Per-request latency by class",
          label, /*scale=*/1e-9);
    }
    metrics_.batches =
        reg->counter("hipa_batches_total", "execute_batch calls");
    metrics_.shards_dispatched = reg->counter(
        "hipa_shards_dispatched_total", "Per-node shard tasks enqueued");
    metrics_.vertices_looked_up = reg->counter(
        "hipa_vertices_looked_up_total", "Rank cells read for lookups");
    metrics_.batch_size =
        reg->histogram("hipa_batch_size_queries", "Queries per batch");
    metrics_.queue_depth = reg->gauge(
        "hipa_worker_queue_depth", "Deepest worker queue at last dispatch");
    metrics_.answer_epoch = reg->gauge(
        "hipa_answer_epoch", "Snapshot epoch of the last answered batch");
    metrics_.epoch_lag = reg->gauge(
        "hipa_answer_epoch_lag",
        "Live store epoch minus last answered epoch (replica staleness)");
  }
  if (opt_.metrics_port >= 0) {
    metrics_server_ = std::make_unique<MetricsHttpServer>(
        reg != nullptr ? *reg : m::MetricsRegistry::global(),
        opt_.metrics_port, opt_.metrics_bind_addr);
  }

  workers_.reserve(nodes);
  for (unsigned w = 0; w < nodes; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Start threads only after the vector is fully built — worker_loop
  // indexes workers_.
  for (unsigned w = 0; w < nodes; ++w) {
    const int cpu = worker_cpu(/*w=*/0, /*node=*/w, opt_.pin_workers);
    workers_[w]->thread =
        std::thread([this, w, cpu] { worker_loop(w, cpu); });
  }
}

RankService::~RankService() { stop(); }

int RankService::metrics_http_port() const {
  return metrics_server_ == nullptr ? -1 : metrics_server_->port();
}

void RankService::stop() {
  if (stopped_) return;
  stopped_ = true;
  metrics_server_.reset();
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mutex);
      worker->shutdown = true;
    }
    worker->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  if (!opt_.trace_path.empty()) {
    // Workers are joined: their span rows are quiescent.
    trace::ChromeTraceWriter::write(opt_.trace_path, timeline_, "serve");
  }
}

void RankService::worker_loop(unsigned w, int cpu) {
  if (cpu >= 0) runtime::pin_current_thread(static_cast<unsigned>(cpu));
  Worker& self = *workers_[w];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(self.mutex);
      self.cv.wait(lock,
                   [&] { return self.shutdown || !self.queue.empty(); });
      if (self.queue.empty()) return;  // shutdown with a drained queue
      task = std::move(self.queue.front());
      self.queue.pop_front();
    }
    const double start = runtime::PhaseTimeline::now();
    run_shard(w, *task.snap, task.shard);
    if (timeline_.spans_enabled()) {
      timeline_.record_span(w, runtime::Phase::kGather,
                            runtime::SpanKind::kKernel, start,
                            runtime::PhaseTimeline::now() - start);
    }
    task.latch->arrive();
  }
}

void RankService::run_shard(unsigned w, const Snapshot& snap,
                            const Shard& shard) {
  (void)w;
  const std::span<const rank_t> ranks = snap.ranks();
  for (const Lookup& lk : shard.lookups) {
    // Ids were bounds-checked at routing time.
    *lk.out = ranks[lk.vertex];
  }
  for (const ScanJob& job : shard.scans) {
    *job.out = partial_top_k(ranks, job.range, job.k);
  }
  for (const ReplicaJob& job : shard.replicas) {
    const std::span<const TopKEntry> rep = snap.topk().replica(
        snap.topk().num_nodes() == 0 ? 0 : w % snap.topk().num_nodes());
    const std::size_t take = std::min<std::size_t>(job.k, rep.size());
    job.out->assign(rep.begin(),
                    rep.begin() + static_cast<std::ptrdiff_t>(take));
  }
}

QueryResult RankService::execute(const Query& q) {
  std::vector<QueryResult> out = execute_batch(std::span(&q, 1));
  return std::move(out.front());
}

std::vector<QueryResult> RankService::execute_batch(
    std::span<const Query> queries) {
  Timer batch_timer;
  const SnapshotRef snap = store_.current();
  HIPA_CHECK(snap.valid(), "no snapshot published yet");
  const Snapshot& s = *snap;
  const std::span<const VertexRange> node_ranges = s.node_ranges();
  const unsigned num_nodes = static_cast<unsigned>(node_ranges.size());
  const TopKIndex& index = s.topk();

  std::vector<QueryResult> results(queries.size());
  // Per-request partial-scan buffers for split top-k queries; stable
  // addresses because the outer vector is sized once.
  struct SplitTopK {
    std::size_t request;
    unsigned k;
    std::vector<std::vector<TopKEntry>> partials;
  };
  std::vector<SplitTopK> splits;

  // ---- Route every request into per-node shards --------------------
  std::vector<Shard> shards(workers_.size());
  std::uint64_t vertices_looked_up = 0;
  // First pass: count split top-k queries so `splits` never
  // reallocates after shards start pointing into it.
  for (const Query& q : queries) {
    if (q.kind == QueryKind::kTopK && q.topk.k > 0 &&
        !(q.topk.global() && q.topk.k <= index.k() &&
          index.num_nodes() > 0)) {
      splits.push_back({});
    }
  }
  std::size_t next_split = 0;

  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    QueryResult& r = results[i];
    r.epoch = s.epoch();
    switch (q.kind) {
      case QueryKind::kPoint: {
        HIPA_CHECK(q.vertex < s.num_vertices(),
                   "point lookup vertex " << q.vertex
                                          << " out of range (n = "
                                          << s.num_vertices() << ")");
        r.ranks.resize(1);
        shards[worker_of_node(s.node_of(q.vertex))].lookups.push_back(
            Lookup{q.vertex, r.ranks.data()});
        ++vertices_looked_up;
        break;
      }
      case QueryKind::kBatch: {
        r.ranks.resize(q.vertices.size());
        for (std::size_t j = 0; j < q.vertices.size(); ++j) {
          const vid_t v = q.vertices[j];
          HIPA_CHECK(v < s.num_vertices(),
                     "batch lookup vertex " << v << " out of range (n = "
                                            << s.num_vertices() << ")");
          shards[worker_of_node(s.node_of(v))].lookups.push_back(
              Lookup{v, &r.ranks[j]});
        }
        vertices_looked_up += q.vertices.size();
        break;
      }
      case QueryKind::kTopK: {
        const TopKQuery& tq = q.topk;
        if (tq.k == 0) break;
        if (tq.global() && tq.k <= index.k() && index.num_nodes() > 0) {
          // Replica-served: one worker, round-robin over nodes.
          const unsigned node = static_cast<unsigned>(
              rr_node_.fetch_add(1, std::memory_order_relaxed) %
              num_nodes);
          shards[worker_of_node(node)].replicas.push_back(
              ReplicaJob{tq.k, &r.topk});
          break;
        }
        // Split scan: each node's worker scans the intersection of the
        // request range with its local slice; merge on the caller.
        const VertexRange want =
            tq.global() ? VertexRange{0, s.num_vertices()} : tq.range;
        HIPA_CHECK(want.begin <= want.end && want.end <= s.num_vertices(),
                   "top-k range [" << want.begin << ", " << want.end
                                   << ") exceeds snapshot vertices "
                                   << s.num_vertices());
        SplitTopK& split = splits[next_split++];
        split.request = i;
        split.k = tq.k;
        split.partials.resize(num_nodes);
        for (unsigned node = 0; node < num_nodes; ++node) {
          const VertexRange local{
              std::max(want.begin, node_ranges[node].begin),
              std::min(want.end, node_ranges[node].end)};
          if (local.begin >= local.end) continue;
          shards[worker_of_node(node)].scans.push_back(
              ScanJob{local, tq.k, &split.partials[node]});
        }
        break;
      }
    }
  }

  // ---- Dispatch one task per non-empty shard and wait --------------
  Latch latch;
  std::vector<unsigned> dispatched;
  for (unsigned w = 0; w < workers_.size(); ++w) {
    if (!shards[w].empty()) dispatched.push_back(w);
  }
  latch.remaining = static_cast<unsigned>(dispatched.size());
  if (!dispatched.empty()) {
    std::size_t deepest_queue = 0;
    for (unsigned w : dispatched) {
      Worker& worker = *workers_[w];
      {
        std::lock_guard<std::mutex> lock(worker.mutex);
        worker.queue.push_back(Task{&s, std::move(shards[w]), &latch});
        deepest_queue = std::max(deepest_queue, worker.queue.size());
      }
      worker.cv.notify_one();
    }
    metrics_.queue_depth.set(static_cast<std::int64_t>(deepest_queue));
    latch.wait();
  }

  // ---- Merge split top-k partials ----------------------------------
  for (SplitTopK& split : splits) {
    results[split.request].topk = merge_top_k(split.partials, split.k);
  }

  // ---- Record stats + per-request latency --------------------------
  const double wall = batch_timer.seconds();

  // Lifetime metrics first, outside the stats mutex: each record is a
  // few relaxed atomic adds, so caller threads never serialize here.
  {
    const std::uint64_t wall_ns = runtime::metrics::seconds_to_ns(wall);
    std::array<std::uint64_t, 3> by_class{};
    for (const Query& q : queries) ++by_class[static_cast<unsigned>(q.kind)];
    for (unsigned c = 0; c < 3; ++c) {
      if (by_class[c] == 0) continue;
      metrics_.requests[c].inc(by_class[c]);
      // Every request in the batch observed the batch's wall time
      // (mirrors the LatencyRecorder accounting below).
      for (std::uint64_t i = 0; i < by_class[c]; ++i) {
        metrics_.latency[c].record(wall_ns);
      }
    }
    metrics_.batches.inc();
    metrics_.shards_dispatched.inc(dispatched.size());
    metrics_.vertices_looked_up.inc(vertices_looked_up);
    metrics_.batch_size.record(queries.size());
    metrics_.answer_epoch.set(static_cast<std::int64_t>(s.epoch()));
    metrics_.epoch_lag.set(
        static_cast<std::int64_t>(store_.epoch() - s.epoch()));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.requests += queries.size();
    for (const Query& q : queries) {
      switch (q.kind) {
        case QueryKind::kPoint:
          ++stats_.point_requests;
          break;
        case QueryKind::kBatch:
          ++stats_.batch_requests;
          break;
        case QueryKind::kTopK:
          ++stats_.topk_requests;
          break;
      }
    }
    ++stats_.batches;
    stats_.shards_dispatched += dispatched.size();
    stats_.vertices_looked_up += vertices_looked_up;
    // Every request in the batch observed the batch's wall time.
    for (std::size_t i = 0; i < queries.size(); ++i) {
      latency_.record(wall);
    }
    // Iteration track: one sample per batch → a request-latency
    // counter lane in the Chrome trace.
    timeline_.record_iteration(wall);
  }
  return results;
}

RankService::Stats RankService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  Stats out = stats_;
  out.latency = latency_.summarize();
  return out;
}

}  // namespace hipa::serve
