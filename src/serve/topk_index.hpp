// NUMA-replicated top-k rank index.
//
// The serving layer's read path must never cross a socket for the
// common "who are the top N pages?" query. Following the NUMA-locality
// argument of the skip-graph line of work (read-dominated query
// structures should be replicated or partitioned per node, not
// shared), the index keeps ONE physical copy of the global top-k list
// per NUMA node: each replica's pages are committed node-locally at
// configure time (mbind when available, pinned first-touch otherwise),
// and a reader always consults the replica of the node it runs on.
//
// The build is hierarchical and runs in parallel per node at snapshot
// publish time:
//   1. every node's builder thread (pinned to a CPU of that node)
//      scans its node-local slice of the rank array and keeps a
//      k-element partial heap — no remote rank reads;
//   2. the publisher merges the per-node partials (k*nodes entries,
//      trivially small) into the global descending top-k;
//   3. each node's builder thread copies the merged list into its own
//      replica, so the replica pages are written — and stay — local.
//
// Ordering matches algo::top_k: rank descending, ties by smaller
// vertex id, so the index is deterministic for a given rank array.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"
#include "runtime/arena.hpp"

namespace hipa::serve {

/// One index entry: a vertex and its rank at snapshot-publish time.
/// Deliberately trivial (no default member initializers) so replica
/// buffers can be zero-filled bytewise during NUMA placement.
struct TopKEntry {
  vid_t vertex;
  rank_t rank;

  friend constexpr bool operator==(const TopKEntry&,
                                   const TopKEntry&) = default;
};

/// Descending-rank comparison with the algo::top_k tie rule (smaller
/// id wins ties). Shared by the index build and the query engine's
/// filtered-scan merge so every top-k producer agrees on order.
[[nodiscard]] constexpr bool topk_less(const TopKEntry& a,
                                       const TopKEntry& b) {
  if (a.rank != b.rank) return a.rank > b.rank;
  return a.vertex < b.vertex;
}

/// Per-node replicated top-k list. configure() once (allocates and
/// places the replicas), build() at every snapshot publish.
class TopKIndex {
 public:
  TopKIndex() = default;
  TopKIndex(TopKIndex&&) noexcept = default;
  TopKIndex& operator=(TopKIndex&&) noexcept = default;

  /// Allocate `num_nodes` page-aligned replicas of `k` entries each
  /// from the partitioned arena's node-bound regions (the caller's
  /// arena when given — the snapshot store shares its own — else a
  /// private one) and commit every replica's pages to its node.
  /// Idempotent for the same (k, num_nodes).
  void configure(unsigned k, unsigned num_nodes,
                 std::shared_ptr<runtime::NumaArena> arena = nullptr);

  /// Rebuild every replica from `ranks`. `node_ranges[n]` is node n's
  /// locally-placed slice of the rank array (the same slices the
  /// snapshot store placed); slices must tile [0, ranks.size()).
  /// Runs one pinned builder thread per node. Returns the build wall
  /// time so callers (the snapshot store) can feed publish-cost
  /// metrics without timing around the call.
  double build(std::span<const rank_t> ranks,
               std::span<const VertexRange> node_ranges);

  [[nodiscard]] unsigned k() const { return k_; }
  [[nodiscard]] unsigned num_nodes() const {
    return static_cast<unsigned>(replicas_.size());
  }
  /// Entries actually filled (min(k, |V| with nonzero candidates)).
  [[nodiscard]] unsigned size() const { return filled_; }

  /// Node n's local copy of the global top-k, descending.
  [[nodiscard]] std::span<const TopKEntry> replica(unsigned node) const {
    return {replicas_[node].data(), filled_};
  }

 private:
  unsigned k_ = 0;
  unsigned filled_ = 0;
  /// Declared before replicas_: the replica buffers view arena pages,
  /// so they must be destroyed (no-op resets) before the arena is.
  std::shared_ptr<runtime::NumaArena> arena_;
  std::vector<AlignedBuffer<TopKEntry>> replicas_;
};

/// k-bounded partial top-k scan over [range.begin, range.end):
/// returns up to k entries sorted by topk_less. The building block for
/// both the index build (per-node slices) and the query engine's
/// filtered scans.
[[nodiscard]] std::vector<TopKEntry> partial_top_k(
    std::span<const rank_t> ranks, VertexRange range, unsigned k);

/// Merge partial lists (each sorted by topk_less) into the global
/// top-k, truncated to k.
[[nodiscard]] std::vector<TopKEntry> merge_top_k(
    std::span<const std::vector<TopKEntry>> partials, unsigned k);

}  // namespace hipa::serve
