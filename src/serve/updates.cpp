#include "serve/updates.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "engines/backend.hpp"
#include "engines/metrics_bridge.hpp"
#include "engines/oocore_engine.hpp"

namespace hipa::serve {

// ---------------------------------------------------------------------------
// UpdateQueue
// ---------------------------------------------------------------------------

UpdateQueue::~UpdateQueue() {
  Node* n = head_.exchange(nullptr, std::memory_order_acquire);
  while (n != nullptr) {
    Node* next = n->next;
    delete n;
    n = next;
  }
}

void UpdateQueue::push(EdgeUpdate u) {
  Node* node = new Node{u, nullptr};
  // Treiber push: link onto the current head until the CAS wins. The
  // release pairs with drain()'s acquire exchange, publishing the
  // node's contents to the consumer.
  Node* head = head_.load(std::memory_order_relaxed);
  do {
    node->next = head;
  } while (!head_.compare_exchange_weak(head, node,
                                        std::memory_order_release,
                                        std::memory_order_relaxed));
  pushed_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<EdgeUpdate> UpdateQueue::drain() {
  // One atomic exchange detaches the whole pending stack; nothing a
  // producer pushes afterwards is part of this batch.
  Node* n = head_.exchange(nullptr, std::memory_order_acquire);
  std::vector<EdgeUpdate> out;
  while (n != nullptr) {
    out.push_back(n->update);
    Node* next = n->next;
    delete n;
    n = next;
  }
  // The stack yields newest-first; callers want arrival order.
  std::reverse(out.begin(), out.end());
  drained_.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// UpdateRefresher
// ---------------------------------------------------------------------------

UpdateRefresher::UpdateRefresher(vid_t num_vertices,
                                 std::vector<Edge> edges,
                                 SnapshotStore& store, UpdateQueue& queue,
                                 RefreshOptions opt)
    : num_vertices_(num_vertices),
      edges_(std::move(edges)),
      store_(store),
      queue_(queue),
      opt_(std::move(opt)) {
  HIPA_CHECK(num_vertices_ == store_.num_vertices(),
             "refresher vertex count " << num_vertices_
                                       << " != store vertices "
                                       << store_.num_vertices());
  for (const Edge& e : edges_) {
    HIPA_CHECK(e.src < num_vertices_ && e.dst < num_vertices_,
               "base edge (" << e.src << ", " << e.dst
                             << ") outside vertex universe "
                             << num_vertices_);
  }
  graph_ = graph::build_graph(num_vertices_, edges_, opt_.build);

  if (opt_.metrics) {
    namespace m = runtime::metrics;
    registry_ = opt_.registry != nullptr ? opt_.registry
                                         : &m::MetricsRegistry::global();
    delta_refreshes_metric_ =
        registry_->counter("hipa_refreshes_total", "Refresh cycles by kind",
                           {"kind", "delta"});
    full_refreshes_metric_ =
        registry_->counter("hipa_refreshes_total", "Refresh cycles by kind",
                           {"kind", "full"});
    updates_applied_metric_ = registry_->counter(
        "hipa_updates_applied_total", "Edge updates applied to the graph");
    delta_latency_metric_ = registry_->histogram(
        "hipa_refresh_seconds", "Refresh cycle latency by kind",
        {"kind", "delta"}, /*scale=*/1e-9);
    full_latency_metric_ = registry_->histogram(
        "hipa_refresh_seconds", "Refresh cycle latency by kind",
        {"kind", "full"}, /*scale=*/1e-9);
    batch_updates_metric_ = registry_->histogram(
        "hipa_refresh_batch_updates", "Edge updates per refresh batch");
    publish_epoch_metric_ = registry_->gauge(
        "hipa_publish_epoch", "Last epoch published by the refresher");
    queue_lag_metric_ = registry_->gauge(
        "hipa_update_queue_lag", "Updates still pending after a drain");
  }
}

UpdateRefresher::~UpdateRefresher() { stop(); }

engine::RunResult UpdateRefresher::full_run() {
  // File-backed mode: stream the segmented graph through OocoreEngine
  // (bounded resident bytes, ranks bitwise identical to in-core) — the
  // refresh path of a shard that never holds the whole CSR. Only the
  // plain PageRank kernel runs out-of-core.
  if (!opt_.graph_path.empty()) {
    HIPA_CHECK(opt_.full.kernel == algo::Kernel::kPageRank,
               "file-backed refresh supports only the pagerank kernel, got "
                   << algo::kernel_name(opt_.full.kernel));
    engine::NativeBackend backend;
    engine::OocoreOptions oo;
    oo.num_threads = opt_.oocore_threads;
    oo.resident_budget_bytes = opt_.oocore_resident_budget_bytes;
    engine::OocoreEngine eng(opt_.graph_path, oo, backend);
    engine::RunResult result = eng.run(opt_.full.pr);
    HIPA_CHECK(result.ranks.size() == num_vertices_,
               "segmented file '" << opt_.graph_path << "' holds "
                                  << result.ranks.size()
                                  << " vertices, store expects "
                                  << num_vertices_);
    return result;
  }
  // Route through the kernel-generic facade, honoring the configured
  // rank-producing kernel (the snapshot store serves rank_t vectors,
  // so only the PageRank family can back a refresh).
  switch (opt_.full.kernel) {
    case algo::Kernel::kPageRank:
      return algo::run_method_native(opt_.full_method, graph_, opt_.full);
    case algo::Kernel::kPersonalized: {
      auto kr = algo::run_kernel_native<engine::PprKernel>(
          opt_.full_method, graph_, opt_.full.personalized, opt_.full);
      engine::RunResult result;
      result.report = std::move(kr.report);
      result.ranks = std::move(kr.values);
      return result;
    }
    case algo::Kernel::kBfs:
    case algo::Kernel::kWcc:
    case algo::Kernel::kSssp:
      break;
  }
  HIPA_CHECK(false, "refresh kernel must be rank-valued (pagerank or ppr), "
                    "got "
                        << algo::kernel_name(opt_.full.kernel));
  __builtin_unreachable();
}

std::uint64_t UpdateRefresher::publish_initial() {
  std::lock_guard<std::mutex> lock(refresh_mutex_);
  Timer timer;
  const engine::RunResult result = full_run();
  full_refreshes_.fetch_add(1, std::memory_order_relaxed);
  refreshes_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t epoch = store_.publish(result);
  full_refreshes_metric_.inc();
  full_latency_metric_.record(
      runtime::metrics::seconds_to_ns(timer.seconds()));
  publish_epoch_metric_.set(static_cast<std::int64_t>(epoch));
  if (registry_ != nullptr) {
    engine::fold_run_metrics(*registry_, result.report);
  }
  return epoch;
}

void UpdateRefresher::apply(const std::vector<EdgeUpdate>& updates) {
  for (const EdgeUpdate& u : updates) {
    HIPA_CHECK(u.edge.src < num_vertices_ && u.edge.dst < num_vertices_,
               "update edge (" << u.edge.src << ", " << u.edge.dst
                               << ") outside vertex universe "
                               << num_vertices_);
    if (u.remove) {
      // Drop every occurrence (parallel edges included).
      edges_.erase(std::remove(edges_.begin(), edges_.end(), u.edge),
                   edges_.end());
    } else {
      edges_.push_back(u.edge);
    }
  }
}

RefreshReport UpdateRefresher::refresh_now() {
  std::lock_guard<std::mutex> lock(refresh_mutex_);
  RefreshReport report;
  const std::vector<EdgeUpdate> batch = queue_.drain();
  if (!opt_.graph_path.empty()) {
    // File-backed topology is immutable from here; updates belong in a
    // re-converted file, not the queue.
    HIPA_CHECK(batch.empty(),
               "file-backed refresher cannot apply "
                   << batch.size()
                   << " queued edge updates — re-convert the segmented "
                      "file and refresh instead");
    Timer timer;
    const engine::RunResult result = full_run();
    report.full_run = true;
    report.iterations = result.report.iterations;
    report.epoch = store_.publish(result);
    full_refreshes_.fetch_add(1, std::memory_order_relaxed);
    refreshes_.fetch_add(1, std::memory_order_relaxed);
    report.seconds = timer.seconds();
    full_refreshes_metric_.inc();
    full_latency_metric_.record(
        runtime::metrics::seconds_to_ns(report.seconds));
    publish_epoch_metric_.set(static_cast<std::int64_t>(report.epoch));
    if (registry_ != nullptr) {
      engine::fold_run_metrics(*registry_, result.report);
    }
    return report;
  }
  if (batch.empty()) return report;

  Timer timer;
  apply(batch);
  // Rebuild the CSR bundle; the builder's canonicalization (sorted,
  // deduplicated) keeps repeated inserts idempotent.
  graph_ = graph::build_graph(num_vertices_, edges_, opt_.build);

  report.updates_applied = batch.size();
  report.full_run = batch.size() > opt_.small_batch_max;
  if (report.full_run) {
    const engine::RunResult result = full_run();
    report.iterations = result.report.iterations;
    report.epoch = store_.publish(result);
    full_refreshes_.fetch_add(1, std::memory_order_relaxed);
    if (registry_ != nullptr) {
      engine::fold_run_metrics(*registry_, result.report);
    }
  } else {
    engine::NativeBackend backend;
    const algo::DeltaResult result =
        algo::pagerank_delta(graph_, opt_.delta, backend);
    report.iterations = result.iterations;
    report.epoch = store_.publish(std::span<const rank_t>(result.ranks));
    delta_refreshes_.fetch_add(1, std::memory_order_relaxed);
  }
  refreshes_.fetch_add(1, std::memory_order_relaxed);
  report.seconds = timer.seconds();

  const std::uint64_t wall_ns = runtime::metrics::seconds_to_ns(report.seconds);
  if (report.full_run) {
    full_refreshes_metric_.inc();
    full_latency_metric_.record(wall_ns);
  } else {
    delta_refreshes_metric_.inc();
    delta_latency_metric_.record(wall_ns);
  }
  updates_applied_metric_.inc(batch.size());
  batch_updates_metric_.record(batch.size());
  publish_epoch_metric_.set(static_cast<std::int64_t>(report.epoch));
  queue_lag_metric_.set(
      static_cast<std::int64_t>(queue_.approx_pending()));
  return report;
}

void UpdateRefresher::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  thread_ = std::thread([this] { background_loop(); });
}

void UpdateRefresher::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void UpdateRefresher::background_loop() {
  const auto poll = std::chrono::duration<double>(opt_.poll_seconds);
  while (running_.load(std::memory_order_acquire)) {
    if (queue_.approx_pending() > 0) {
      (void)refresh_now();
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait_for(lock, poll, [this] {
      return !running_.load(std::memory_order_acquire);
    });
  }
  // Final drain so updates pushed just before stop() are not lost.
  if (queue_.approx_pending() > 0) (void)refresh_now();
}

}  // namespace hipa::serve
