// Edge-update ingestion and snapshot refresh: the path from "a link
// changed" to "queries see new ranks".
//
//   * UpdateQueue — lock-free MPSC edge-update queue (Treiber stack
//     with an exchange-based drain). Any number of producer threads
//     push() concurrently with one consumer; drain() detaches the
//     whole pending list in one atomic exchange and returns it in
//     arrival (FIFO) order. Producers never lock, never wait, and
//     never touch the graph.
//   * UpdateRefresher — the single consumer: drains the queue, applies
//     the updates to its private edge list, rebuilds the CSR, picks a
//     recompute strategy by batch size —
//       small batch (<= small_batch_max): PageRank-Delta, which only
//         propagates changed mass (paper §6's incremental extension;
//         approximate, bounded by its epsilon);
//       large batch: a full HiPa engine run (exact, and — with the
//         deterministic PCPM gather — bitwise-reproducible);
//     — and atomically publishes the resulting ranks as the next
//     snapshot epoch. Readers keep querying the previous epoch for the
//     whole recompute; the publish is the store's one-word swap.
//
// refresh_now() is the synchronous form (tests, benches, examples);
// start()/stop() runs the same cycle on a background polling thread —
// the "background refresher" of the serving layer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "algos/pagerank.hpp"
#include "algos/pagerank_delta.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "runtime/metrics.hpp"
#include "serve/snapshot.hpp"

namespace hipa::serve {

/// One queued mutation: insert (default) or remove an edge.
struct EdgeUpdate {
  Edge edge{};
  bool remove = false;
};

/// Lock-free multi-producer single-consumer update queue.
class UpdateQueue {
 public:
  UpdateQueue() = default;
  ~UpdateQueue();

  UpdateQueue(const UpdateQueue&) = delete;
  UpdateQueue& operator=(const UpdateQueue&) = delete;

  /// Enqueue (lock-free, any thread).
  void push(EdgeUpdate u);
  void push_add(Edge e) { push(EdgeUpdate{e, false}); }
  void push_remove(Edge e) { push(EdgeUpdate{e, true}); }

  /// Detach and return everything pending, oldest first. Single
  /// consumer only (the refresher).
  [[nodiscard]] std::vector<EdgeUpdate> drain();

  /// Updates pushed minus updates drained (racy by nature; monotone
  /// counters underneath).
  [[nodiscard]] std::size_t approx_pending() const {
    const std::uint64_t p = pushed_.load(std::memory_order_relaxed);
    const std::uint64_t d = drained_.load(std::memory_order_relaxed);
    return p > d ? static_cast<std::size_t>(p - d) : 0;
  }
  [[nodiscard]] std::uint64_t total_pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    EdgeUpdate update;
    Node* next = nullptr;
  };
  std::atomic<Node*> head_{nullptr};
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> drained_{0};  ///< consumer-only writes
};

/// Refresh strategy knobs.
struct RefreshOptions {
  /// Batches of at most this many updates refresh with PageRank-Delta;
  /// larger batches trigger a full engine run.
  std::uint64_t small_batch_max = 64;
  /// Delta-path options. threads defaults to 1 here (deterministic:
  /// the delta push phase uses atomic adds, so only a single-threaded
  /// run is bitwise-reproducible).
  algo::DeltaOptions delta{.threads = 1, .num_nodes = 1};
  /// Full-run path: methodology + parameters for the kernel-generic
  /// runners. `full.kernel` selects which rank-producing kernel backs
  /// the refresh — kPageRank (default) or kPersonalized with
  /// `full.personalized` seeds; non-rank kernels are rejected.
  algo::Method full_method = algo::Method::kHipa;
  algo::MethodParams full{};
  /// CSR canonicalization for rebuilds (duplicates dropped so repeated
  /// inserts of one edge are idempotent).
  graph::BuildOptions build{.sort_neighbors = true,
                            .remove_duplicates = true};
  /// Non-empty: full recomputes stream from this segmented HCSR v3
  /// file through OocoreEngine instead of running over the in-memory
  /// CSR — the shard-fleet refresh mode, where a process serves a
  /// vertex slice without holding the whole in-core graph. File-backed
  /// mode is full-run only (kernel must stay kPageRank) and the
  /// topology is the file's: edge updates cannot be applied, so
  /// refresh_now() rejects a non-empty queue, and refresh_now()
  /// recomputes unconditionally (the use case is "the file was
  /// re-converted on disk").
  std::string graph_path;
  /// OocoreEngine knobs for file-backed full runs.
  unsigned oocore_threads = 2;
  std::size_t oocore_resident_budget_bytes = 0;  ///< 0 = unlimited
  /// Background-thread poll period.
  double poll_seconds = 0.005;
  /// Lifetime metrics (refresh latency by kind, applied updates,
  /// publish epoch, queue lag, folded engine-run totals). false =
  /// no-op handles, behavior byte-identical.
  bool metrics = true;
  /// Registry to record into; nullptr = the process-global registry.
  runtime::metrics::MetricsRegistry* registry = nullptr;
};

/// What one refresh cycle did.
struct RefreshReport {
  std::uint64_t epoch = 0;  ///< published epoch; 0 = queue was empty
  std::size_t updates_applied = 0;
  bool full_run = false;    ///< full engine run vs PageRank-Delta
  unsigned iterations = 0;
  double seconds = 0.0;     ///< drain + rebuild + recompute + publish
};

/// The single consumer: owns the evolving edge list + CSR, recomputes
/// and publishes. All refreshing (synchronous or background) is
/// serialized internally; producers only ever touch the queue.
class UpdateRefresher {
 public:
  /// `edges` is the base edge list; ids must be < num_vertices (the
  /// store's vertex universe is fixed at its construction).
  UpdateRefresher(vid_t num_vertices, std::vector<Edge> edges,
                  SnapshotStore& store, UpdateQueue& queue,
                  RefreshOptions opt = {});
  ~UpdateRefresher();

  UpdateRefresher(const UpdateRefresher&) = delete;
  UpdateRefresher& operator=(const UpdateRefresher&) = delete;

  /// Full run over the base edges and publish epoch 1 (or the next
  /// epoch if the store already holds snapshots). Returns the epoch.
  std::uint64_t publish_initial();

  /// One synchronous refresh cycle: drain → apply → rebuild →
  /// recompute → publish. No-op (epoch 0) when the queue is empty.
  RefreshReport refresh_now();

  /// Start/stop the background refresher thread (idempotent). The
  /// thread polls the queue every poll_seconds and runs refresh_now()
  /// whenever updates are pending.
  void start();
  void stop();
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Current graph (consumer-side; callers must not race a running
  /// background refresher — exposed for tests and examples).
  [[nodiscard]] const graph::Graph& graph() const { return graph_; }
  [[nodiscard]] std::uint64_t num_edges() const {
    return static_cast<std::uint64_t>(edges_.size());
  }

  // Counters (monotone, racy-read safe).
  [[nodiscard]] std::uint64_t refreshes() const {
    return refreshes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t delta_refreshes() const {
    return delta_refreshes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t full_refreshes() const {
    return full_refreshes_.load(std::memory_order_relaxed);
  }

 private:
  void apply(const std::vector<EdgeUpdate>& updates);
  void background_loop();
  /// One full engine run with the configured method + kernel.
  [[nodiscard]] engine::RunResult full_run();

  vid_t num_vertices_;
  std::vector<Edge> edges_;
  graph::Graph graph_;
  SnapshotStore& store_;
  UpdateQueue& queue_;
  RefreshOptions opt_;

  std::mutex refresh_mutex_;  ///< serializes refresh cycles
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;

  std::atomic<std::uint64_t> refreshes_{0};
  std::atomic<std::uint64_t> delta_refreshes_{0};
  std::atomic<std::uint64_t> full_refreshes_{0};

  // Lifetime metric handles; registry_ doubles as the "metrics on"
  // flag and the sink for fold_run_metrics after full engine runs.
  runtime::metrics::MetricsRegistry* registry_ = nullptr;
  runtime::metrics::Counter delta_refreshes_metric_;
  runtime::metrics::Counter full_refreshes_metric_;
  runtime::metrics::Counter updates_applied_metric_;
  runtime::metrics::Histogram delta_latency_metric_;
  runtime::metrics::Histogram full_latency_metric_;
  runtime::metrics::Histogram batch_updates_metric_;
  runtime::metrics::Gauge publish_epoch_metric_;
  runtime::metrics::Gauge queue_lag_metric_;
};

}  // namespace hipa::serve
