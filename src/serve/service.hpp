// Batched query engine over the snapshot store: one persistent,
// NUMA-pinned worker per node, request coalescing into per-node
// shards, per-request latency into the runtime telemetry surface.
//
// Execution model (the serving-side mirror of the engines' Algorithm 2
// thread model):
//
//   * at construction the service starts one persistent worker thread
//     per snapshot-store node and pins it to a CPU of that node
//     (runtime/affinity; best effort, like the engines). Workers live
//     for the service's lifetime — no thread creation on the request
//     path;
//   * execute_batch() pins ONE snapshot for the whole batch (so every
//     answer in a batch comes from the same epoch), then coalesces the
//     requests into at most one shard per node:
//       - point/batch lookups are routed to the node that owns the
//         vertex under the snapshot's placement slices, so the worker
//         reads only node-local rank pages;
//       - global top-k requests within the index depth go to one
//         worker round-robin and are served from that node's replica
//         (pure local reads);
//       - range-restricted (or deeper-than-index) top-k requests are
//         split across the nodes whose slices intersect the range;
//         each worker scans only its local slice and the caller merges
//         the tiny per-node partials;
//   * each worker drains its shard queue under a mutex+condvar (the
//     queue is cold — the work is the shard body); a per-batch latch
//     releases the caller when every shard finished.
//
// Telemetry: the service owns a runtime::PhaseTimeline with one row
// per worker. Shard executions are recorded as spans (phase = kGather,
// the read side of the shared vocabulary) when a trace path is
// configured, and per-request latencies feed both the LatencyRecorder
// (percentile stats) and the timeline's iteration track, so a
// configured trace_path yields a chrome://tracing view of worker
// activity with a request-latency counter track — the same pipeline
// the engines use.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "runtime/metrics.hpp"
#include "runtime/telemetry.hpp"
#include "serve/query.hpp"
#include "serve/snapshot.hpp"

namespace hipa::serve {

class MetricsHttpServer;

/// Service construction knobs.
struct ServiceOptions {
  /// Pin each worker to a CPU of its node (best effort).
  bool pin_workers = true;
  /// When non-empty, collect worker spans and write a Chrome trace
  /// here at stop()/destruction.
  std::string trace_path;
  /// Pre-reserved latency samples (grows beyond as needed).
  std::size_t latency_reserve = 1 << 16;
  /// Lifetime metrics (per-class latency histograms, batch sizes,
  /// queue depth, epoch lag). false = no-op handles, behavior
  /// byte-identical.
  bool metrics = true;
  /// Registry to record into; nullptr = the process-global registry.
  runtime::metrics::MetricsRegistry* registry = nullptr;
  /// Metrics scrape endpoint (serve/metrics_export): -1 = no listener
  /// (default), 0 = ephemeral port (tests; see metrics_http_port()),
  /// 1..65535 = fixed port.
  int metrics_port = -1;
  /// Scrape endpoint bind address. The loopback default keeps a
  /// single-host service private; a shard scraped by a remote router
  /// opts into "0.0.0.0" (or a specific interface) explicitly.
  std::string metrics_bind_addr = "127.0.0.1";
};

/// The batched query engine. Thread-safe: any number of caller threads
/// may execute() / execute_batch() concurrently; the snapshot store's
/// publisher keeps publishing underneath.
class RankService {
 public:
  explicit RankService(const SnapshotStore& store, ServiceOptions opt = {});
  ~RankService();

  RankService(const RankService&) = delete;
  RankService& operator=(const RankService&) = delete;

  /// Execute one request (a batch of one).
  QueryResult execute(const Query& q);

  /// Execute a batch of requests against ONE pinned snapshot (all
  /// responses carry the same epoch). Throws hipa::Error when nothing
  /// has been published yet.
  std::vector<QueryResult> execute_batch(std::span<const Query> queries);

  /// Aggregate counters since construction.
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t point_requests = 0;
    std::uint64_t batch_requests = 0;
    std::uint64_t topk_requests = 0;
    std::uint64_t batches = 0;           ///< execute_batch calls
    std::uint64_t shards_dispatched = 0; ///< per-node tasks enqueued
    std::uint64_t vertices_looked_up = 0;
    LatencySummary latency;              ///< per-request wall seconds
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] unsigned num_workers() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Actual port of the metrics HTTP listener (-1 when
  /// ServiceOptions::metrics_port was left disabled).
  [[nodiscard]] int metrics_http_port() const;

  /// Join the workers and, when a trace path was configured, write the
  /// Chrome trace. Idempotent; the destructor calls it.
  void stop();

 private:
  /// Work routed to one node in one batch.
  struct Lookup {
    vid_t vertex;
    rank_t* out;
  };
  struct ScanJob {
    VertexRange range;
    unsigned k;
    std::vector<TopKEntry>* out;
  };
  struct ReplicaJob {
    unsigned k;
    std::vector<TopKEntry>* out;
  };
  struct Shard {
    std::vector<Lookup> lookups;
    std::vector<ScanJob> scans;
    std::vector<ReplicaJob> replicas;
    [[nodiscard]] bool empty() const {
      return lookups.empty() && scans.empty() && replicas.empty();
    }
  };

  /// Countdown latch for one batch dispatch.
  struct Latch {
    std::mutex mutex;
    std::condition_variable cv;
    unsigned remaining = 0;
    void arrive();
    void wait();
  };

  struct Task {
    const Snapshot* snap;
    Shard shard;
    Latch* latch;
  };

  struct Worker {
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Task> queue;
    bool shutdown = false;
  };

  void worker_loop(unsigned w, int cpu);
  void run_shard(unsigned w, const Snapshot& snap, const Shard& shard);
  [[nodiscard]] unsigned worker_of_node(unsigned node) const {
    return node % static_cast<unsigned>(workers_.size());
  }

  const SnapshotStore& store_;
  ServiceOptions opt_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool stopped_ = false;

  /// Lifetime metric handles, indexed by QueryKind where per-class.
  struct Instruments {
    std::array<runtime::metrics::Counter, 3> requests;
    std::array<runtime::metrics::Histogram, 3> latency;
    runtime::metrics::Counter batches;
    runtime::metrics::Counter shards_dispatched;
    runtime::metrics::Counter vertices_looked_up;
    runtime::metrics::Histogram batch_size;
    runtime::metrics::Gauge queue_depth;
    runtime::metrics::Gauge answer_epoch;
    runtime::metrics::Gauge epoch_lag;
  };
  Instruments metrics_;
  std::unique_ptr<MetricsHttpServer> metrics_server_;

  // Stats + caller-side telemetry, shared by caller threads.
  mutable std::mutex stats_mutex_;
  Stats stats_;                       ///< latency summarized on read
  LatencyRecorder latency_;           ///< under stats_mutex_
  runtime::PhaseTimeline timeline_;   ///< rows owned by workers; the
                                      ///< iteration track under
                                      ///< stats_mutex_
  std::atomic<std::uint64_t> rr_node_{0};  ///< round-robin for replicas
};

}  // namespace hipa::serve
