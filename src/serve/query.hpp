// Query vocabulary of the serving layer, snapshot-local evaluators,
// and the latency recorder behind the service's percentile stats.
//
// Three request kinds cover the ROADMAP's read traffic:
//
//   * kPoint — "what is the rank of page v?" (one vertex);
//   * kBatch — the same for a caller-supplied vertex set (one response
//     array, input order preserved);
//   * kTopK  — "who are the strongest k pages?", either globally
//     (served straight from the snapshot's NUMA-local top-k replica —
//     no scan, no cross-node traffic) or restricted to a vertex-id
//     range (served by a bounded-heap scan of exactly that range).
//
// The evaluators here are pure functions of one pinned Snapshot: they
// take a SnapshotRef'd snapshot, never touch the store, and therefore
// inherit the snapshot contract — everything they read is immutable
// and epoch-consistent. Placement-aware execution (which node's worker
// scans which slice) lives one layer up in serve/service.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "serve/snapshot.hpp"
#include "serve/topk_index.hpp"

namespace hipa::serve {

/// Request kinds understood by the query engine.
enum class QueryKind : unsigned char { kPoint = 0, kBatch = 1, kTopK = 2 };

[[nodiscard]] std::string_view query_kind_name(QueryKind k);

/// Top-k request: global when `range` is empty (the default), else
/// restricted to vertex ids in [range.begin, range.end).
struct TopKQuery {
  unsigned k = 10;
  VertexRange range{0, 0};

  [[nodiscard]] bool global() const { return range.empty(); }
};

/// One request. Exactly the fields of its kind are meaningful.
struct Query {
  QueryKind kind = QueryKind::kPoint;
  vid_t vertex = 0;                ///< kPoint
  std::vector<vid_t> vertices;     ///< kBatch
  TopKQuery topk;                  ///< kTopK

  [[nodiscard]] static Query point(vid_t v) {
    Query q;
    q.kind = QueryKind::kPoint;
    q.vertex = v;
    return q;
  }
  [[nodiscard]] static Query batch(std::vector<vid_t> vs) {
    Query q;
    q.kind = QueryKind::kBatch;
    q.vertices = std::move(vs);
    return q;
  }
  [[nodiscard]] static Query top_k(unsigned k, VertexRange range = {0, 0}) {
    Query q;
    q.kind = QueryKind::kTopK;
    q.topk = TopKQuery{k, range};
    return q;
  }
};

/// One response. `epoch` stamps which snapshot answered; `ranks`
/// carries kPoint (size 1) / kBatch (input order) results, `topk`
/// carries kTopK results (descending under topk_less).
struct QueryResult {
  std::uint64_t epoch = 0;
  std::vector<rank_t> ranks;
  std::vector<TopKEntry> topk;
};

// ---------------------------------------------------------------------------
// Snapshot-local evaluators (the per-shard kernels the service runs on
// its pinned workers; also usable directly against a pinned snapshot).
// ---------------------------------------------------------------------------

/// Point lookup. Bounds-checked (HIPA_CHECK).
[[nodiscard]] rank_t point_lookup(const Snapshot& snap, vid_t v);

/// Batch lookup: out[i] = rank of vertices[i]. `out.size()` must equal
/// `vertices.size()`; every id is bounds-checked.
void batch_lookup(const Snapshot& snap, std::span<const vid_t> vertices,
                  std::span<rank_t> out);

/// Top-k evaluation. Global queries with k <= the snapshot's index
/// depth are answered from the replica of `node` (pure local reads);
/// deeper-than-index or range-restricted queries fall back to a
/// bounded-heap scan of the requested range. Result is descending
/// under topk_less and at most k entries.
[[nodiscard]] std::vector<TopKEntry> topk_query(const Snapshot& snap,
                                                const TopKQuery& q,
                                                unsigned node = 0);

/// Evaluate one whole query against one snapshot (the single-threaded
/// reference the service's sharded execution must agree with).
[[nodiscard]] QueryResult evaluate(const Snapshot& snap, const Query& q,
                                   unsigned node = 0);

// ---------------------------------------------------------------------------
// Latency recording
// ---------------------------------------------------------------------------

/// Percentile summary of recorded request latencies.
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double p999_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Append-only latency sample sink. Not thread-safe by itself — the
/// service serializes recording under its stats mutex; benches own one
/// recorder per load-generator thread and merge.
class LatencyRecorder {
 public:
  void reserve(std::size_t n) { samples_.reserve(n); }
  void record(double seconds) { samples_.push_back(seconds); }
  void merge(const LatencyRecorder& o) {
    samples_.insert(samples_.end(), o.samples_.begin(), o.samples_.end());
  }
  [[nodiscard]] std::uint64_t count() const { return samples_.size(); }
  [[nodiscard]] std::span<const double> samples() const { return samples_; }

  /// Sort-and-scan summary (nearest-rank percentiles). O(n log n);
  /// called off the request path.
  [[nodiscard]] LatencySummary summarize() const;

 private:
  std::vector<double> samples_;
};

}  // namespace hipa::serve
