#include "serve/snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "runtime/affinity.hpp"
#include "runtime/placement.hpp"

namespace hipa::serve {

std::vector<VertexRange> even_node_ranges(vid_t n, unsigned nodes) {
  HIPA_CHECK(nodes >= 1, "need at least one node");
  // Page-aligned slice boundaries so each node's slice covers whole
  // pages and per-node placement is exact.
  constexpr vid_t kVertsPerPage =
      static_cast<vid_t>(kPageSize / sizeof(rank_t));
  const vid_t per =
      ((n + nodes - 1) / nodes + kVertsPerPage - 1) / kVertsPerPage *
      kVertsPerPage;
  std::vector<VertexRange> out(nodes);
  vid_t begin = 0;
  for (unsigned node = 0; node < nodes; ++node) {
    const vid_t end = std::min<vid_t>(n, begin + per);
    out[node] = VertexRange{begin, end};
    begin = end;
  }
  out.back().end = n;  // absorb any rounding remainder
  return out;
}

SnapshotStore::SnapshotStore(vid_t num_vertices, StoreOptions opt)
    : num_vertices_(num_vertices) {
  HIPA_CHECK(num_vertices > 0, "empty vertex set");
  HIPA_CHECK(opt.slots >= 2, "need >= 2 snapshot slots (double buffer)");
  const unsigned nodes =
      opt.num_nodes != 0 ? opt.num_nodes : runtime::topology().num_nodes();
  if (!opt.node_ranges.empty()) {
    HIPA_CHECK(opt.node_ranges.size() == nodes,
               "node_ranges size must match num_nodes");
    HIPA_CHECK(opt.node_ranges.front().begin == 0 &&
                   opt.node_ranges.back().end == num_vertices,
               "node_ranges must tile [0, num_vertices)");
    for (std::size_t i = 0; i + 1 < opt.node_ranges.size(); ++i) {
      HIPA_CHECK(opt.node_ranges[i].end == opt.node_ranges[i + 1].begin,
                 "node_ranges must be contiguous");
    }
    node_ranges_ = std::move(opt.node_ranges);
  } else {
    node_ranges_ = even_node_ranges(num_vertices, nodes);
  }

  // Allocate every slot once from the store's partitioned arena:
  // page-aligned rank buffer with each node's slice committed
  // node-locally while the contents are dead (publishes later only
  // overwrite bytes, so pages never move), plus the per-node top-k
  // replicas carved from the same arena's node regions. Slot buffers
  // come from the first-touch region — the explicit per-slice binding
  // below is the placement policy, not the region's.
  arena_ = std::make_shared<runtime::NumaArena>(
      runtime::ArenaOptions{.num_nodes = nodes});
  slots_ = std::vector<Slot>(opt.slots);
  for (Slot& slot : slots_) {
    slot.snap.ranks_ = arena_->alloc_buffer<rank_t>(
        num_vertices, runtime::ArenaPlacement::kFirstTouch);
    slot.snap.node_ranges_ = node_ranges_;
    for (unsigned node = 0; node < nodes; ++node) {
      const VertexRange r = node_ranges_[node];
      if (r.empty()) continue;
      void* p = slot.snap.ranks_.data() + r.begin;
      const std::size_t bytes = std::size_t{r.size()} * sizeof(rank_t);
      if (runtime::bind_pages_to_node(p, bytes, node)) {
        std::memset(p, 0, bytes);
      } else {
        runtime::first_touch_zero_on_node(p, bytes, node);
      }
    }
    slot.snap.topk_.configure(opt.topk_k, nodes, arena_);
  }

  if (opt.metrics) {
    namespace m = runtime::metrics;
    m::MetricsRegistry& reg =
        opt.registry != nullptr ? *opt.registry : m::MetricsRegistry::global();
    publishes_metric_ =
        reg.counter("hipa_snapshot_publishes_total", "Snapshots published");
    pins_metric_ =
        reg.counter("hipa_snapshot_pins_total", "Reader pins acquired");
    reclaim_waits_metric_ = reg.counter(
        "hipa_snapshot_reclaim_waits_total",
        "Publishes that waited out a retired slot's straggling readers");
    epoch_metric_ =
        reg.gauge("hipa_snapshot_epoch", "Epoch of the live snapshot");
    arena_used_metric_ = reg.gauge("hipa_store_arena_used_bytes",
                                   "Store arena bytes in use");
    topk_build_metric_ = reg.histogram(
        "hipa_topk_build_seconds", "Per-publish top-k replica build time", {},
        /*scale=*/1e-9);
    // The ring + replicas are carved once at construction; publishes
    // only overwrite bytes, so this gauge is static until resharding.
    arena_used_metric_.set(
        static_cast<std::int64_t>(arena_->stats().total_used()));
  }
}

std::uint64_t SnapshotStore::publish(std::span<const rank_t> ranks) {
  HIPA_CHECK(ranks.size() == num_vertices_,
             "rank array size " << ranks.size() << " != store vertices "
                                << num_vertices_);
  std::lock_guard<std::mutex> lock(publish_mutex_);

  // Pick the next ring slot, skipping the live one, and wait out the
  // grace period: a retired slot may still carry stragglers that
  // pinned it one ring-trip ago. Readers of the live snapshot are
  // never waited on.
  const Slot* live = current_.load(std::memory_order_relaxed);
  Slot* slot = nullptr;
  for (;;) {
    Slot* cand = &slots_[next_slot_];
    next_slot_ = (next_slot_ + 1) % slots_.size();
    if (cand == live) continue;
    slot = cand;
    break;
  }
  // Grace period: acquire pairs with the last straggler's release
  // decrement, ordering its reads before our overwrite.
  bool waited = false;
  while (slot->readers.load(std::memory_order_acquire) != 0) {
    waited = true;
    std::this_thread::yield();
  }
  if (waited) {
    reclaim_waits_.fetch_add(1, std::memory_order_relaxed);
    reclaim_waits_metric_.inc();
  }

  // Fill the slot: overwrite the placed pages and rebuild the top-k
  // replicas (parallel per node).
  std::copy(ranks.begin(), ranks.end(), slot->snap.ranks_.data());
  const double topk_seconds =
      slot->snap.topk_.build(slot->snap.ranks_.span(), node_ranges_);
  slot->snap.epoch_ = next_epoch_++;

  // The one-word publication: release makes every write above visible
  // to any reader that acquires this pointer.
  current_.store(slot, std::memory_order_release);
  publishes_metric_.inc();
  epoch_metric_.set(static_cast<std::int64_t>(slot->snap.epoch_));
  topk_build_metric_.record(runtime::metrics::seconds_to_ns(topk_seconds));
  return slot->snap.epoch_;
}

SnapshotRef SnapshotStore::current() const {
  for (;;) {
    Slot* s = current_.load(std::memory_order_acquire);
    if (s == nullptr) return {};
    s->readers.fetch_add(1, std::memory_order_acquire);
    // Validation: if the pointer still names this slot, the publisher
    // cannot have started reusing it (reuse waits for readers == 0 on
    // *retired* slots only), so the pin is safe. Otherwise back off
    // and retry — we only touched the counter, never the data.
    if (current_.load(std::memory_order_acquire) == s) {
      pins_metric_.inc();
      return SnapshotRef(&s->snap, &s->readers);
    }
    s->readers.fetch_sub(1, std::memory_order_release);
  }
}

}  // namespace hipa::serve
