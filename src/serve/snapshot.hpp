// Versioned rank-snapshot store: atomic publish, lock-free readers,
// grace-period slot reclamation.
//
// The serving layer must answer queries *while* a recompute is in
// flight, so published ranks are immutable, epoch-numbered snapshots:
//
//   * publish(ranks) copies the ranks into the next free slot of a
//     small ring (>= 3 slots: the live snapshot, the one being built,
//     and one generation of grace for stragglers), rebuilds that
//     slot's NUMA-replicated top-k index, stamps a fresh epoch and
//     release-stores the slot pointer — one atomic word is the entire
//     publication;
//   * current() acquires a read pin with the classic counted-reference
//     validation loop (increment the slot's reader count, re-check the
//     published pointer, back off on a lost race). Readers never take
//     a lock and never block a publisher mid-publish; a snapshot they
//     pinned stays fully intact until the pin drops;
//   * slot reuse waits for the reader count of a *retired* slot (two
//     or more publishes old) to drain — the grace period. Readers of
//     the current or previous epoch are never waited on.
//
// Memory placement mirrors the engines (paper §3.4): each slot's rank
// buffer is page-aligned and its per-node slices are committed
// node-locally once at store construction (mbind or pinned
// first-touch via runtime/placement); later publishes only overwrite
// bytes, so the physical pages — and the read path's locality — are
// stable across epochs.
//
// Happens-before discipline (the TSan-verified contract):
//   publisher slot writes -> current_.store(release)
//     -> reader current_.load(acquire) -> reader data reads
//   reader readers_.fetch_sub(release) -> publisher readers_.load
//     (acquire) == 0 -> publisher slot reuse writes
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"
#include "engines/backend.hpp"
#include "runtime/arena.hpp"
#include "runtime/metrics.hpp"
#include "serve/topk_index.hpp"

namespace hipa::serve {

/// One immutable, epoch-numbered snapshot: the rank array plus the
/// per-node top-k replicas built from it at publish time.
class Snapshot {
 public:
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] vid_t num_vertices() const {
    return static_cast<vid_t>(ranks_.size());
  }
  [[nodiscard]] std::span<const rank_t> ranks() const {
    return ranks_.span();
  }
  [[nodiscard]] rank_t rank_of(vid_t v) const { return ranks_[v]; }
  [[nodiscard]] const TopKIndex& topk() const { return topk_; }

  /// The node-placement slices the store committed (one per node;
  /// they tile [0, num_vertices)).
  [[nodiscard]] std::span<const VertexRange> node_ranges() const {
    return node_ranges_;
  }
  /// Owning node of vertex v under those slices.
  [[nodiscard]] unsigned node_of(vid_t v) const {
    for (unsigned n = 0; n + 1 < node_ranges_.size(); ++n) {
      if (v < node_ranges_[n].end) return n;
    }
    return node_ranges_.empty()
               ? 0
               : static_cast<unsigned>(node_ranges_.size() - 1);
  }

 private:
  friend class SnapshotStore;
  std::uint64_t epoch_ = 0;
  AlignedBuffer<rank_t> ranks_;
  TopKIndex topk_;
  std::vector<VertexRange> node_ranges_;
};

/// RAII read pin on one published snapshot. Move-only; dropping the
/// last pin of a retired epoch lets the publisher reclaim its slot.
class SnapshotRef {
 public:
  SnapshotRef() = default;
  SnapshotRef(SnapshotRef&& o) noexcept
      : snap_(o.snap_), readers_(o.readers_) {
    o.snap_ = nullptr;
    o.readers_ = nullptr;
  }
  SnapshotRef& operator=(SnapshotRef&& o) noexcept {
    if (this != &o) {
      release();
      snap_ = o.snap_;
      readers_ = o.readers_;
      o.snap_ = nullptr;
      o.readers_ = nullptr;
    }
    return *this;
  }
  SnapshotRef(const SnapshotRef&) = delete;
  SnapshotRef& operator=(const SnapshotRef&) = delete;
  ~SnapshotRef() { release(); }

  /// False before the store's first publish.
  [[nodiscard]] bool valid() const { return snap_ != nullptr; }
  explicit operator bool() const { return valid(); }

  [[nodiscard]] const Snapshot& operator*() const { return *snap_; }
  [[nodiscard]] const Snapshot* operator->() const { return snap_; }

 private:
  friend class SnapshotStore;
  SnapshotRef(const Snapshot* snap, std::atomic<std::uint64_t>* readers)
      : snap_(snap), readers_(readers) {}
  void release() {
    if (readers_ != nullptr) {
      readers_->fetch_sub(1, std::memory_order_release);
      readers_ = nullptr;
      snap_ = nullptr;
    }
  }

  const Snapshot* snap_ = nullptr;
  std::atomic<std::uint64_t>* readers_ = nullptr;
};

/// Store construction knobs.
struct StoreOptions {
  /// Placement granularity. 0 = discover from the host topology.
  unsigned num_nodes = 0;
  /// Depth of every snapshot's replicated top-k index.
  unsigned topk_k = 64;
  /// Snapshot ring depth. Minimum 2 (double buffering); the default 3
  /// adds one generation of grace so a reader pinning epoch E never
  /// delays the publish of E+1 or E+2.
  unsigned slots = 3;
  /// Optional explicit per-node vertex slices (e.g. a hierarchical
  /// plan's node_vertex_range, to mirror the compute layout). Empty =
  /// even page-aligned split over num_nodes.
  std::vector<VertexRange> node_ranges;
  /// Lifetime metrics (publishes, reader pins, reclaim waits, top-k
  /// build latency). false = no-op handles, behavior byte-identical.
  bool metrics = true;
  /// Registry to record into; nullptr = the process-global registry.
  runtime::metrics::MetricsRegistry* registry = nullptr;
};

/// The versioned snapshot store. One publisher at a time (publish is
/// internally serialized); any number of concurrent lock-free readers.
class SnapshotStore {
 public:
  explicit SnapshotStore(vid_t num_vertices, StoreOptions opt = {});

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Copy `ranks` into the next free slot, rebuild its top-k
  /// replicas, stamp the next epoch and atomically publish. Blocks
  /// only when every non-live slot still has straggling readers
  /// (grace period). Returns the new epoch (epochs start at 1).
  std::uint64_t publish(std::span<const rank_t> ranks);

  /// Publish hook off the engines' unified run surface: snapshot the
  /// final ranks of an engine::RunResult (bitwise — acceptance tests
  /// compare the published snapshot against a direct run).
  std::uint64_t publish(const engine::RunResult& result) {
    return publish(std::span<const rank_t>(result.ranks));
  }

  /// Lock-free pin of the live snapshot; invalid() before the first
  /// publish.
  [[nodiscard]] SnapshotRef current() const;

  /// Epoch of the live snapshot (0 = nothing published yet).
  [[nodiscard]] std::uint64_t epoch() const {
    const Slot* s = current_.load(std::memory_order_acquire);
    return s == nullptr ? 0 : s->snap.epoch();
  }

  [[nodiscard]] vid_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] unsigned num_nodes() const {
    return static_cast<unsigned>(node_ranges_.size());
  }
  [[nodiscard]] unsigned num_slots() const {
    return static_cast<unsigned>(slots_.size());
  }
  [[nodiscard]] std::span<const VertexRange> node_ranges() const {
    return node_ranges_;
  }
  /// Times the publisher had to spin waiting for a retired slot's
  /// readers to drain (grace-period contention indicator).
  [[nodiscard]] std::uint64_t reclaim_waits() const {
    return reclaim_waits_.load(std::memory_order_relaxed);
  }

  /// Allocation/placement snapshot of the store's arena (slot ring +
  /// top-k replicas all carve from it).
  [[nodiscard]] runtime::ArenaStats arena_stats() const {
    return arena_->stats();
  }

 private:
  /// One ring slot: reader-count line apart from the snapshot data.
  struct alignas(kCacheLine) Slot {
    std::atomic<std::uint64_t> readers{0};
    Snapshot snap;
  };

  vid_t num_vertices_ = 0;
  std::vector<VertexRange> node_ranges_;
  /// Declared before slots_: slot rank buffers and top-k replicas view
  /// arena pages, so the ring must be destroyed before the arena.
  std::shared_ptr<runtime::NumaArena> arena_;
  std::vector<Slot> slots_;
  std::atomic<Slot*> current_{nullptr};
  std::mutex publish_mutex_;        ///< serializes publishers only
  std::uint64_t next_epoch_ = 1;    ///< under publish_mutex_
  unsigned next_slot_ = 0;          ///< under publish_mutex_
  std::atomic<std::uint64_t> reclaim_waits_{0};

  // Lifetime metric handles (no-ops when StoreOptions::metrics is
  // false); value types, so no registry lifetime coupling.
  runtime::metrics::Counter publishes_metric_;
  runtime::metrics::Counter pins_metric_;
  runtime::metrics::Counter reclaim_waits_metric_;
  runtime::metrics::Gauge epoch_metric_;
  runtime::metrics::Gauge arena_used_metric_;
  runtime::metrics::Histogram topk_build_metric_;
};

/// Even, page-aligned split of [0, n) over `nodes` slices (the store's
/// default placement; exposed for tests and for callers that want the
/// same tiling elsewhere).
[[nodiscard]] std::vector<VertexRange> even_node_ranges(vid_t n,
                                                        unsigned nodes);

}  // namespace hipa::serve
