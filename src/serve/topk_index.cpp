#include "serve/topk_index.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "runtime/affinity.hpp"
#include "runtime/placement.hpp"
#include "runtime/thread_pool.hpp"

namespace hipa::serve {

namespace {

/// Pin the calling thread to some CPU of `node` (best effort; the
/// host topology wraps requested nodes beyond the machine).
void pin_to_node(unsigned node) {
  const runtime::HostTopology& topo = runtime::topology();
  const auto& cpus = topo.node_cpus[node % topo.num_nodes()];
  if (!cpus.empty()) runtime::pin_current_thread(cpus[0]);
}

}  // namespace

std::vector<TopKEntry> partial_top_k(std::span<const rank_t> ranks,
                                     VertexRange range, unsigned k) {
  std::vector<TopKEntry> heap;
  if (k == 0 || range.empty()) return heap;
  HIPA_CHECK(range.end <= ranks.size(), "top-k range exceeds rank array");
  heap.reserve(k);
  // Bounded heap with the *weakest* kept entry at the front (so it is
  // the one evicted when a stronger candidate arrives). std::push_heap
  // puts the largest-by-cmp element first, so "larger" must mean
  // "stronger under topk_less" — i.e. cmp is topk_less itself.
  auto heap_cmp = [](const TopKEntry& a, const TopKEntry& b) {
    return topk_less(a, b);
  };
  for (vid_t v = range.begin; v < range.end; ++v) {
    const TopKEntry cand{v, ranks[v]};
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), heap_cmp);
      continue;
    }
    if (topk_less(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), heap_cmp);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), heap_cmp);
    }
  }
  // sort_heap yields ascending-under-cmp order, which for topk_less
  // ("stronger compares smaller") is strongest-first — the final
  // descending-rank order.
  std::sort_heap(heap.begin(), heap.end(), heap_cmp);
  return heap;
}

std::vector<TopKEntry> merge_top_k(
    std::span<const std::vector<TopKEntry>> partials, unsigned k) {
  std::vector<TopKEntry> all;
  for (const auto& p : partials) all.insert(all.end(), p.begin(), p.end());
  std::sort(all.begin(), all.end(), [](const TopKEntry& a,
                                       const TopKEntry& b) {
    return topk_less(a, b);
  });
  if (all.size() > k) all.resize(k);
  return all;
}

void TopKIndex::configure(unsigned k, unsigned num_nodes,
                          std::shared_ptr<runtime::NumaArena> arena) {
  HIPA_CHECK(num_nodes >= 1, "top-k index needs at least one node");
  if (k_ == k && replicas_.size() == num_nodes &&
      (arena == nullptr || arena == arena_)) {
    return;
  }
  k_ = k;
  filled_ = 0;
  // Replicas view arena pages: drop them before any arena swap.
  replicas_.clear();
  arena_ = arena != nullptr ? std::move(arena)
                            : std::make_shared<runtime::NumaArena>(
                                  runtime::ArenaOptions{.num_nodes =
                                                            num_nodes});
  replicas_.reserve(num_nodes);
  for (unsigned node = 0; node < num_nodes; ++node) {
    // Carved from the arena's node-bound region (slab-level mbind, or
    // pinned first-touch when unavailable); zero-fill commits the
    // pages while contents are dead.
    AlignedBuffer<TopKEntry> rep = arena_->alloc_buffer<TopKEntry>(
        k, runtime::ArenaPlacement::kNode, node);
    if (k > 0) rep.fill_zero();
    replicas_.push_back(std::move(rep));
  }
}

double TopKIndex::build(std::span<const rank_t> ranks,
                        std::span<const VertexRange> node_ranges) {
  Timer timer;
  HIPA_CHECK(!replicas_.empty(), "configure() before build()");
  HIPA_CHECK(node_ranges.size() == replicas_.size(),
             "one vertex range per node replica");
  const unsigned nodes = num_nodes();

  // Phase 1: per-node partial top-k over the node-local slice, one
  // pinned builder thread per node (single-node hosts degrade to one
  // plain thread).
  std::vector<std::vector<TopKEntry>> partials(nodes);
  runtime::fork_join_run(nodes, [&](unsigned node) {
    pin_to_node(node);
    partials[node] = partial_top_k(ranks, node_ranges[node], k_);
  });

  // Phase 2: tiny serial merge (k * nodes entries).
  const std::vector<TopKEntry> merged = merge_top_k(partials, k_);
  filled_ = static_cast<unsigned>(merged.size());

  // Phase 3: every node's builder writes its own replica so the
  // entries land (and stay) in node-local pages.
  runtime::fork_join_run(nodes, [&](unsigned node) {
    pin_to_node(node);
    std::copy(merged.begin(), merged.end(), replicas_[node].data());
  });
  return timer.seconds();
}

}  // namespace hipa::serve
