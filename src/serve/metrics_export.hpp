// Exposition of the process-lifetime metrics registry: Prometheus text
// format, a JSON snapshot, and a minimal self-contained HTTP listener
// so an external poller (Prometheus, curl, tools/hipa-top) can scrape
// a running service.
//
// Wire formats:
//   * to_prometheus() — Prometheus text exposition v0.0.4. Counters
//     and gauges map directly; histograms are emitted as `summary`
//     families with quantile labels (0.5/0.95/0.99/0.999) plus _sum
//     and _count, pre-scaled by the histogram's registered export
//     scale (latency histograms record nanoseconds, export seconds).
//     This is also the per-shard health feed ROADMAP item 3's routers
//     will consume.
//   * to_json() — the same snapshot as one JSON object, consumed by
//     `hipa-top --file` and the bench/test harnesses.
//
// The listener is a deliberately tiny poll-loop server (one thread,
// blocking per-connection I/O, Connection: close) — a scrape target,
// not a web server. No third-party dependencies; plain POSIX sockets.
// It binds 127.0.0.1 by default; a shard fleet scraped by a remote
// router opts into a non-loopback bind explicitly (ServiceOptions::
// metrics_bind_addr), and over-long request lines are rejected with
// 414 so a garbage peer cannot grow the parse buffer.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "runtime/metrics.hpp"

namespace hipa::serve {

/// Prometheus text exposition (v0.0.4) of one snapshot.
[[nodiscard]] std::string to_prometheus(
    const runtime::metrics::MetricsSnapshot& snap);

/// JSON rendering of one snapshot:
/// {"uptime_seconds": .., "counters": [{"name","label_key","label_value",
///  "value"}..], "gauges": [..], "histograms": [{"name",..,"count","sum",
///  "p50","p95","p99","p999","max","mean"}..]} — histogram values
/// pre-scaled like the Prometheus form.
[[nodiscard]] std::string to_json(
    const runtime::metrics::MetricsSnapshot& snap);

/// Minimal HTTP/1.0 scrape endpoint over a registry.
///
///   GET /metrics       -> Prometheus text format
///   GET /metrics.json  -> JSON snapshot
///   anything else      -> 404
///
/// `port` 0 binds an ephemeral port (tests); a fixed port that cannot
/// be bound throws hipa::Error, as does a `bind_addr` that is not a
/// dotted-quad IPv4 address. The listener thread snapshots the
/// registry per request — writers are never blocked.
class MetricsHttpServer {
 public:
  /// Longest accepted request line ("GET <path> HTTP/1.x"); anything
  /// longer is answered 414 and dropped.
  static constexpr std::size_t kMaxRequestLine = 512;

  MetricsHttpServer(const runtime::metrics::MetricsRegistry& registry,
                    int port, const std::string& bind_addr = "127.0.0.1");
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Actual bound port (resolves ephemeral binds).
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] bool running() const {
    return !stopped_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t scrapes() const {
    return scrapes_.load(std::memory_order_relaxed);
  }

  /// Join the listener (idempotent; destructor calls it).
  void stop();

 private:
  void loop();

  const runtime::metrics::MetricsRegistry& registry_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> scrapes_{0};
  std::thread thread_;
};

}  // namespace hipa::serve
