#include "serve/metrics_export.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace hipa::serve {

namespace m = runtime::metrics;

namespace {

/// Shortest round-trip double formatting (%.17g trims trailing
/// noise via %g semantics); Prometheus and JSON both accept it.
void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

/// Label selector: `{key="value"}` (Prometheus escaping), empty when
/// the metric is unlabeled. `extra` appends a second pair (quantile).
void append_label_selector(std::string& out, const m::MetricLabel& label,
                           std::string_view extra_key = {},
                           std::string_view extra_value = {}) {
  if (label.empty() && extra_key.empty()) return;
  out += '{';
  bool first = true;
  auto emit = [&](std::string_view k, std::string_view v) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    for (char c : v) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  };
  if (!label.empty()) emit(label.key, label.value);
  if (!extra_key.empty()) emit(extra_key, extra_value);
  out += '}';
}

void append_help_type(std::string& out, const std::string& name,
                      const std::string& help, std::string_view type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

/// Emit one family (all same-name entries) at a time so HELP/TYPE
/// precede every sample of the family exactly once, regardless of
/// registration interleaving.
template <typename Entry, typename EmitOne>
void emit_families(std::string& out, const std::vector<Entry>& entries,
                   std::string_view type, EmitOne&& emit_one) {
  std::vector<bool> done(entries.size(), false);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (done[i]) continue;
    append_help_type(out, entries[i].name, entries[i].help, type);
    for (std::size_t j = i; j < entries.size(); ++j) {
      if (done[j] || entries[j].name != entries[i].name) continue;
      done[j] = true;
      emit_one(entries[j]);
    }
  }
}

void json_escape_into(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string to_prometheus(const m::MetricsSnapshot& snap) {
  std::string out;
  out.reserve(4096);

  out += "# HELP hipa_uptime_seconds Seconds since registry creation\n";
  out += "# TYPE hipa_uptime_seconds gauge\n";
  out += "hipa_uptime_seconds ";
  append_double(out, snap.uptime_seconds);
  out += '\n';

  emit_families(out, snap.counters, "counter",
                [&](const m::CounterSnapshot& c) {
                  out += c.name;
                  append_label_selector(out, c.label);
                  out += ' ';
                  append_u64(out, c.value);
                  out += '\n';
                });

  emit_families(out, snap.gauges, "gauge", [&](const m::GaugeSnapshot& g) {
    out += g.name;
    append_label_selector(out, g.label);
    out += ' ';
    append_i64(out, g.value);
    out += '\n';
  });

  // Histograms as Prometheus summaries: pre-computed quantiles are
  // what the log-linear buckets give us, and they keep the scrape
  // payload small (4 quantiles vs 592 buckets).
  emit_families(
      out, snap.histograms, "summary", [&](const m::HistogramSnapshot& h) {
        const struct {
          const char* q;
          double v;
        } quantiles[] = {{"0.5", h.p50},
                         {"0.95", h.p95},
                         {"0.99", h.p99},
                         {"0.999", h.p999}};
        for (const auto& [q, v] : quantiles) {
          out += h.name;
          append_label_selector(out, h.label, "quantile", q);
          out += ' ';
          append_double(out, v * h.scale);
          out += '\n';
        }
        out += h.name;
        out += "_sum";
        append_label_selector(out, h.label);
        out += ' ';
        append_double(out, h.sum * h.scale);
        out += '\n';
        out += h.name;
        out += "_count";
        append_label_selector(out, h.label);
        out += ' ';
        append_u64(out, h.count);
        out += '\n';
      });

  return out;
}

std::string to_json(const m::MetricsSnapshot& snap) {
  std::string out;
  out.reserve(4096);
  auto name_label = [&](const auto& e) {
    out += "{\"name\":\"";
    json_escape_into(out, e.name);
    out += "\",\"label_key\":\"";
    json_escape_into(out, e.label.key);
    out += "\",\"label_value\":\"";
    json_escape_into(out, e.label.value);
    out += "\"";
  };

  out += "{\"uptime_seconds\":";
  append_double(out, snap.uptime_seconds);
  out += ",\"counters\":[";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i != 0) out += ',';
    name_label(snap.counters[i]);
    out += ",\"value\":";
    append_u64(out, snap.counters[i].value);
    out += '}';
  }
  out += "],\"gauges\":[";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i != 0) out += ',';
    name_label(snap.gauges[i]);
    out += ",\"value\":";
    append_i64(out, snap.gauges[i].value);
    out += '}';
  }
  out += "],\"histograms\":[";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const m::HistogramSnapshot& h = snap.histograms[i];
    if (i != 0) out += ',';
    name_label(h);
    out += ",\"count\":";
    append_u64(out, h.count);
    auto field = [&](const char* key, double raw) {
      out += ",\"";
      out += key;
      out += "\":";
      append_double(out, raw * h.scale);
    };
    field("sum", h.sum);
    field("p50", h.p50);
    field("p95", h.p95);
    field("p99", h.p99);
    field("p999", h.p999);
    field("max", h.max);
    field("mean", h.mean());
    out += '}';
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// MetricsHttpServer
// ---------------------------------------------------------------------------

namespace {

void send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; a scraper will retry
    off += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, std::string_view status,
                   std::string_view content_type, std::string_view body) {
  std::string head;
  head.reserve(160);
  head += "HTTP/1.0 ";
  head += status;
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: ";
  append_u64(head, body.size());
  head += "\r\nConnection: close\r\n\r\n";
  send_all(fd, head);
  send_all(fd, body);
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(
    const runtime::metrics::MetricsRegistry& registry, int port,
    const std::string& bind_addr)
    : registry_(registry) {
  HIPA_CHECK(port >= 0 && port <= 65535,
             "metrics port " << port << " out of range");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  HIPA_CHECK(::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) == 1,
             "metrics listener: bad bind address '" << bind_addr << "'");
  addr.sin_port = htons(static_cast<std::uint16_t>(port));

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  HIPA_CHECK(listen_fd_ >= 0,
             "metrics listener: socket() failed, errno " << errno);
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    HIPA_CHECK(false, "metrics listener: cannot bind "
                          << bind_addr << ':' << port << ", errno " << err);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));
  thread_ = std::thread([this] { loop(); });
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::loop() {
  while (!stopped_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or transient error: re-check stop
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;

    // Bounded blocking read of the request head; scrapers send tiny
    // requests, so one second is generous.
    timeval tv{1, 0};
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    char buf[2048];
    const ssize_t n = ::recv(client, buf, sizeof buf - 1, 0);
    if (n <= 0) {
      ::close(client);
      continue;
    }
    buf[n] = '\0';

    // "GET <path> HTTP/1.x" — everything else is a 404/405. A request
    // line that does not terminate within kMaxRequestLine bytes is
    // rejected outright (the endpoint serves two fixed paths; nothing
    // legitimate comes close).
    std::string_view req(buf, static_cast<std::size_t>(n));
    const std::size_t line_end = req.find("\r\n");
    if (line_end == std::string_view::npos ||
        line_end > kMaxRequestLine) {
      send_response(client, "414 URI Too Long", "text/plain",
                    "request line too long\n");
      ::close(client);
      continue;
    }
    std::string_view path;
    if (req.substr(0, 4) == "GET ") {
      const std::size_t end = req.find(' ', 4);
      if (end != std::string_view::npos && end < line_end) {
        path = req.substr(4, end - 4);
      }
    }
    if (path == "/metrics") {
      send_response(client, "200 OK", "text/plain; version=0.0.4",
                    to_prometheus(registry_.snapshot()));
      scrapes_.fetch_add(1, std::memory_order_relaxed);
    } else if (path == "/metrics.json") {
      send_response(client, "200 OK", "application/json",
                    to_json(registry_.snapshot()));
      scrapes_.fetch_add(1, std::memory_order_relaxed);
    } else if (path == "/") {
      send_response(client, "200 OK", "text/plain",
                    "hipa metrics endpoint\n/metrics       Prometheus "
                    "text format\n/metrics.json  JSON snapshot\n");
    } else {
      send_response(client, "404 Not Found", "text/plain", "not found\n");
    }
    ::close(client);
  }
}

}  // namespace hipa::serve
