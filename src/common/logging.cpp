#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <iostream>
#include <mutex>

#include "common/timer.hpp"

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace hipa {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_emit_mutex;

thread_local int tl_node = -1;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

long current_tid() {
#if defined(__linux__)
  thread_local const long tid = static_cast<long>(::syscall(SYS_gettid));
  return tid;
#else
  return 0;
#endif
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_set_thread_node(int node) { tl_node = node; }

namespace detail {
// Line shape: `[hipa:WARN +12.345678s t:4321 n:1] message`.
// The `+...s` timestamp is steady (monotonic) process uptime on the
// same epoch the Chrome-trace exporter uses for span `ts` values, so
// a log line at +12.345678s sits at 12,345,678 us on the Perfetto
// timeline; t:/n: are the OS thread id and pinned NUMA node.
void log_emit(LogLevel level, const std::string& message) {
  const double up = steady_uptime_seconds();
  char prefix[96];
  if (tl_node >= 0) {
    std::snprintf(prefix, sizeof(prefix), "[hipa:%s +%.6fs t:%ld n:%d] ",
                  level_name(level), up, current_tid(), tl_node);
  } else {
    std::snprintf(prefix, sizeof(prefix), "[hipa:%s +%.6fs t:%ld n:?] ",
                  level_name(level), up, current_tid());
  }
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr << prefix << message << '\n';
}
}  // namespace detail

}  // namespace hipa
