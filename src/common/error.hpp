// Checked-error helpers.
//
// Library invariants are enforced with HIPA_CHECK (always on, throws
// hipa::Error) so misuse is diagnosed identically in Release and Debug —
// graph preprocessing bugs otherwise surface as silent wrong ranks.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hipa {

/// Exception thrown on violated preconditions / invariants.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise_check_failure(const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << "HIPA_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace hipa

/// Always-on invariant check. Usage:
///   HIPA_CHECK(a < b, "partition " << p << " out of range");
#define HIPA_CHECK(expr, ...)                                              \
  do {                                                                     \
    if (!(expr)) [[unlikely]] {                                            \
      std::ostringstream hipa_check_os_;                                   \
      hipa_check_os_ << "" __VA_ARGS__;                                    \
      ::hipa::detail::raise_check_failure(#expr, __FILE__, __LINE__,       \
                                          hipa_check_os_.str());           \
    }                                                                      \
  } while (false)
