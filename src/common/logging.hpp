// Minimal leveled logger.
//
// Bench harnesses print their tables on stdout; diagnostics go through
// this logger on stderr so table output stays machine-parseable.
#pragma once

#include <sstream>
#include <string>

namespace hipa {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Tag the calling thread's log lines with the NUMA node it is pinned
/// to (shown as `n:<node>`; untagged threads print `n:?`). Called by
/// pin_current_thread after a successful pin so worker log lines
/// correlate with per-node trace tracks. Pass -1 to clear.
void log_set_thread_node(int node);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace hipa

#define HIPA_LOG(level, ...)                                      \
  do {                                                            \
    if (static_cast<int>(level) >=                                \
        static_cast<int>(::hipa::log_level())) {                  \
      std::ostringstream hipa_log_os_;                            \
      hipa_log_os_ << __VA_ARGS__;                                \
      ::hipa::detail::log_emit(level, hipa_log_os_.str());        \
    }                                                             \
  } while (false)

#define HIPA_DEBUG(...) HIPA_LOG(::hipa::LogLevel::kDebug, __VA_ARGS__)
#define HIPA_INFO(...) HIPA_LOG(::hipa::LogLevel::kInfo, __VA_ARGS__)
#define HIPA_WARN(...) HIPA_LOG(::hipa::LogLevel::kWarn, __VA_ARGS__)
#define HIPA_ERROR(...) HIPA_LOG(::hipa::LogLevel::kError, __VA_ARGS__)
