// Wall-clock timer for the native backend and preprocessing phases.
#pragma once

#include <chrono>

namespace hipa {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Seconds since the process-wide steady epoch (first call). Shared
/// by log timestamps and trace spans so "+12.345678s" in a log line
/// lands at ts=12345678us on the Perfetto timeline.
[[nodiscard]] inline double steady_uptime_seconds() {
  static const Timer t0;
  return t0.seconds();
}

}  // namespace hipa
