// Wall-clock timer for the native backend and preprocessing phases.
#pragma once

#include <chrono>

namespace hipa {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hipa
