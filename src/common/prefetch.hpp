// Software-prefetch hints for the hot kernels.
//
// These are *host* hints only: they never enter the simulator's cost
// model (SimMem charges nothing for them), so native and simulated
// kernels share one code path and the sim's counters stay comparable
// across prefetch tuning. On compilers without __builtin_prefetch they
// compile to nothing.
#pragma once

namespace hipa {

inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

inline void prefetch_write(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace hipa
