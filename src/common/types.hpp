// Fundamental fixed-width types shared by every HiPa module.
//
// The paper (Section 4.1) fixes vertex ids, edge payloads and PageRank
// values at 4 bytes each; edge *counts* need 64 bits because the
// evaluated graphs reach 2.1 B edges.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hipa {

/// Vertex identifier (4 bytes, as in the paper).
using vid_t = std::uint32_t;

/// Edge index / edge count (graphs can exceed 2^32 edges).
using eid_t = std::uint64_t;

/// PageRank value / generic vertex attribute (4 bytes, as in the paper).
using rank_t = float;

/// Invalid-vertex sentinel.
inline constexpr vid_t kInvalidVid = static_cast<vid_t>(-1);

/// Cache line size assumed throughout (both evaluated Xeons use 64 B).
inline constexpr std::size_t kCacheLine = 64;

/// Small-page size used by the simulated NUMA page map.
inline constexpr std::size_t kPageSize = 4096;

/// Half-open range of vertices [begin, end).
struct VertexRange {
  vid_t begin = 0;
  vid_t end = 0;

  [[nodiscard]] constexpr vid_t size() const { return end - begin; }
  [[nodiscard]] constexpr bool empty() const { return begin == end; }
  [[nodiscard]] constexpr bool contains(vid_t v) const {
    return v >= begin && v < end;
  }
  friend constexpr bool operator==(const VertexRange&,
                                   const VertexRange&) = default;
};

/// A directed edge (source, destination).
struct Edge {
  vid_t src = 0;
  vid_t dst = 0;
  friend constexpr bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace hipa
