// Minimal command-line parsing helpers shared by the bench binaries
// (bench/bench_util.hpp's Flags) and the offline tools
// (tools/hipa_convert.cpp). Deliberately tiny and dependency-free:
// prefix-matched `--name=value` flags, comma-separated name lists
// resolved through a caller-supplied vocabulary, and strict integer
// parsing that aborts on junk — a silently mis-parsed flag would
// corrupt a reproduction run, so every failure here is loud and fatal
// (exit code 2, the conventional usage-error status).
//
// This header knows nothing about methods, kernels or reorder modes;
// callers pass their own `from_name` lookup (e.g.
// algo::method_from_name) so the vocabulary lives next to the enum it
// names.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace hipa::cli {

/// If `arg` starts with `prefix` (conventionally "--name="), return
/// the text after the prefix; nullptr otherwise. Usable directly in a
/// condition: `if (const char* v = flag_value(a, "--out=")) ...`.
[[nodiscard]] inline const char* flag_value(const char* arg,
                                            const char* prefix) {
  const std::size_t n = std::strlen(prefix);
  return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
}

/// Exact-match boolean flag ("--quick", "--help").
[[nodiscard]] inline bool flag_is(const char* arg, const char* name) {
  return std::strcmp(arg, name) == 0;
}

/// Split "a,b,c" into tokens; empty tokens (",,b" or a trailing
/// comma) are dropped.
[[nodiscard]] inline std::vector<std::string> split_csv(const char* list) {
  std::vector<std::string> out;
  const std::string s(list);
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = std::min(s.find(',', pos), s.size());
    std::string tok = s.substr(pos, comma - pos);
    if (!tok.empty()) out.push_back(std::move(tok));
    pos = comma + 1;
  }
  return out;
}

/// Parse a comma-separated list of named values through `from_name`
/// (any callable taking std::string and returning std::optional<T>).
/// Unknown names abort with the vocabulary: `what` names the flag
/// domain for the message ("method"), `vocab` lists valid spellings.
template <class T, class FromName>
[[nodiscard]] std::vector<T> parse_name_list(const char* list,
                                             FromName&& from_name,
                                             const char* what,
                                             const char* vocab) {
  std::vector<T> out;
  for (const std::string& tok : split_csv(list)) {
    const auto v = from_name(tok);
    if (!v.has_value()) {
      std::fprintf(stderr, "unknown %s '%s' (try %s)\n", what, tok.c_str(),
                   vocab);
      std::exit(2);
    }
    out.push_back(*v);
  }
  return out;
}

/// Strict unsigned parse; `flag` names the flag in the abort message.
/// Zero is allowed (benches use 0 as "per-bench default").
[[nodiscard]] inline unsigned long long parse_u64(const char* flag,
                                                  const char* arg) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0') {
    std::fprintf(stderr, "%s needs an unsigned integer, got '%s'\n", flag,
                 arg);
    std::exit(2);
  }
  return v;
}

/// parse_u64 that additionally rejects zero (sizes, counts).
[[nodiscard]] inline unsigned long long parse_positive(const char* flag,
                                                       const char* arg) {
  const unsigned long long v = parse_u64(flag, arg);
  if (v == 0) {
    std::fprintf(stderr, "%s needs a positive integer, got '%s'\n", flag,
                 arg);
    std::exit(2);
  }
  return v;
}

}  // namespace hipa::cli
