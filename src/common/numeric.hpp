// Small numeric helpers used across partitioning and layout code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace hipa {

/// ceil(a / b) for unsigned integers; b must be nonzero.
template <class T>
[[nodiscard]] constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

/// Round `a` up to the next multiple of `m` (m nonzero).
template <class T>
[[nodiscard]] constexpr T round_up(T a, T m) {
  return ceil_div(a, m) * m;
}

/// True iff `x` is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr unsigned log2_floor(std::uint64_t x) {
  unsigned r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// Exclusive prefix sum: out[i] = sum(in[0..i)), out.size() == in.size()+1.
template <class In, class Out>
void exclusive_scan(std::span<const In> in, std::vector<Out>& out) {
  out.resize(in.size() + 1);
  Out acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc += static_cast<Out>(in[i]);
  }
  out[in.size()] = acc;
}

/// Split [0, n) into `parts` half-open chunks as evenly as possible;
/// returns the `parts + 1` boundaries.
template <class T>
[[nodiscard]] std::vector<T> even_chunks(T n, std::size_t parts) {
  HIPA_CHECK(parts > 0);
  std::vector<T> bounds(parts + 1);
  const T base = n / static_cast<T>(parts);
  const T rem = n % static_cast<T>(parts);
  T pos = 0;
  for (std::size_t i = 0; i <= parts; ++i) {
    bounds[i] = pos;
    if (i < parts) pos += base + (static_cast<T>(i) < rem ? 1 : 0);
  }
  return bounds;
}

}  // namespace hipa
