// Minimal dependency-free JSON reader shared by the bench schema
// checker, the perf-regression gate, and the trace-output tests.
// Extracted from bench_schema_check so every consumer parses the
// machine-readable artifacts with the same grammar.
//
// Deliberately small: parses the JSON our own writers emit (objects,
// arrays, strings with the common escapes, numbers, bools, null).
// Parse errors do NOT abort the process — parse() returns nullptr and
// records a human-readable error with the byte offset, so tests can
// assert on malformed input instead of dying.
#pragma once

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hipa::json {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<ValuePtr> array;
  // Insertion-ordered (we care about stable error messages, not lookup
  // speed; bench objects have a handful of keys).
  std::vector<std::pair<std::string, ValuePtr>> object;

  [[nodiscard]] const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return v.get();
    }
    return nullptr;
  }
  [[nodiscard]] bool is(Type t) const { return type == t; }
};

[[nodiscard]] inline const char* type_name(Value::Type t) {
  switch (t) {
    case Value::Type::kNull: return "null";
    case Value::Type::kBool: return "bool";
    case Value::Type::kNumber: return "number";
    case Value::Type::kString: return "string";
    case Value::Type::kArray: return "array";
    case Value::Type::kObject: return "object";
  }
  return "?";
}

class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  /// Parses the whole document. Returns nullptr on error; see error().
  [[nodiscard]] ValuePtr parse() {
    ValuePtr v = parse_value();
    if (failed_) return nullptr;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content");
      return nullptr;
    }
    return v;
  }

  /// Empty when the last parse() succeeded.
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t error_offset() const { return pos_; }

 private:
  void fail(const char* what) {
    if (failed_) return;  // keep the first (innermost) diagnosis
    failed_ = true;
    error_ = "JSON parse error at offset " + std::to_string(pos_) + ": " +
             what;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end");
      return '\0';
    }
    return text_[pos_];
  }
  void expect(char c) {
    if (failed_) return;
    if (peek() != c) {
      fail("unexpected character");
      return;
    }
    ++pos_;
  }
  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  ValuePtr parse_value() {  // NOLINT(misc-no-recursion)
    if (failed_) return nullptr;
    skip_ws();
    auto v = std::make_shared<Value>();
    const char c = peek();
    if (failed_) return nullptr;
    if (c == '{') {
      v->type = Value::Type::kObject;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (!failed_) {
        skip_ws();
        const std::string key = parse_string();
        skip_ws();
        expect(':');
        v->object.emplace_back(key, parse_value());
        skip_ws();
        if (failed_) break;
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
      return nullptr;
    }
    if (c == '[') {
      v->type = Value::Type::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (!failed_) {
        v->array.push_back(parse_value());
        skip_ws();
        if (failed_) break;
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
      return nullptr;
    }
    if (c == '"') {
      v->type = Value::Type::kString;
      v->str = parse_string();
      return failed_ ? nullptr : v;
    }
    if (consume_literal("true")) {
      v->type = Value::Type::kBool;
      v->boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v->type = Value::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return v;
    // Number.
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
      return nullptr;
    }
    v->type = Value::Type::kNumber;
    v->number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (!failed_) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
        break;
      }
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("bad escape");
          break;
        }
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("bad \\u escape");
              break;
            }
            // Our writers only ever \u-escape ASCII control chars.
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            out.push_back(static_cast<char>(
                std::strtoul(hex.c_str(), nullptr, 16) & 0x7f));
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::string text_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

/// One-shot convenience: parse `text`, nullptr + `*error` on failure.
[[nodiscard]] inline ValuePtr parse(std::string text,
                                    std::string* error = nullptr) {
  Parser p(std::move(text));
  ValuePtr v = p.parse();
  if (v == nullptr && error != nullptr) *error = p.error();
  return v;
}

}  // namespace hipa::json
