// Deterministic, fast PRNGs for graph generation and tests.
//
// SplitMix64 seeds xoshiro256**; both are the reference public-domain
// algorithms (Blackman & Vigna). <random> engines are avoided on hot
// generation paths: R-MAT draws billions of variates.
#pragma once

#include <array>
#include <cstdint>

namespace hipa {

/// SplitMix64 — used for seeding and cheap hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — main generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire).
  constexpr std::uint64_t bounded(std::uint64_t bound) {
    // 128-bit multiply keeps the result unbiased enough for graph
    // generation; the tiny residual bias of the plain multiply-shift is
    // below anything a degree distribution can detect.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hipa
