// Cache-line / page aligned typed buffer.
//
// Graph arrays must be (a) aligned so the simulator's line/page math is
// exact and (b) free of std::vector's value-initialization cost on
// multi-GB allocations. AlignedBuffer is a move-only RAII array with
// explicit alignment and *no* implicit zeroing.
//
// Ownership is pluggable: the default constructor path owns heap memory
// (std::aligned_alloc), while the adopting constructor wraps memory
// owned elsewhere — the partitioned NUMA arena (runtime/arena) hands
// out AlignedBuffers whose storage it reclaims wholesale at arena
// destruction, so engines keep their member types unchanged while every
// page-aligned hot-path allocation flows through one placement policy.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <utility>

#include "common/error.hpp"
#include "common/types.hpp"

namespace hipa {

namespace detail {
void* aligned_allocate(std::size_t bytes, std::size_t alignment);
void aligned_deallocate(void* p) noexcept;

/// Process-wide observer invoked on every aligned_allocate before the
/// allocation happens. Installed by runtime/arena's HotPathGuard
/// machinery to flag page-aligned allocations that bypass the arena
/// inside an engine's hot path; nullptr (the default) costs one
/// relaxed atomic load.
using AllocObserver = void (*)(std::size_t bytes, std::size_t alignment);
void set_alloc_observer(AllocObserver fn);
}  // namespace detail

/// Move-only aligned array of trivially-copyable T.
template <class T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer holds POD-like graph data only");

 public:
  /// How adopted storage is released on reset(); nullptr means the
  /// external owner (e.g. the arena) reclaims it — reset is a no-op.
  using DeallocFn = void (*)(void*);

  AlignedBuffer() = default;

  /// Allocate `count` elements aligned to `alignment` bytes
  /// (default: one cache line). Contents are uninitialized.
  explicit AlignedBuffer(std::size_t count,
                         std::size_t alignment = kCacheLine)
      : size_(count) {
    if (count > 0) {
      data_ = static_cast<T*>(
          detail::aligned_allocate(count * sizeof(T), alignment));
    }
  }

  /// Adopt `count` elements at `adopted` allocated by an external
  /// owner. `dealloc` runs on reset(); pass nullptr when the owner
  /// reclaims the storage itself (arena-backed buffers).
  AlignedBuffer(T* adopted, std::size_t count, DeallocFn dealloc) noexcept
      : data_(adopted), size_(count), dealloc_(dealloc) {}

  AlignedBuffer(AlignedBuffer&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        dealloc_(std::exchange(o.dealloc_, &default_dealloc)) {}

  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    if (this != &o) {
      reset();
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
      dealloc_ = std::exchange(o.dealloc_, &default_dealloc);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { reset(); }

  void reset() noexcept {
    if (data_ != nullptr && dealloc_ != nullptr) dealloc_(data_);
    data_ = nullptr;
    size_ = 0;
    dealloc_ = &default_dealloc;
  }

  /// True when reset() releases the storage itself (heap-owned); false
  /// for arena-backed buffers whose owner reclaims wholesale.
  [[nodiscard]] bool owns_storage() const { return dealloc_ != nullptr; }

  /// Set every element to value-initialized T (memset for PODs).
  void fill_zero();

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t size_bytes() const { return size_ * sizeof(T); }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] std::span<T> span() { return {data_, size_}; }
  [[nodiscard]] std::span<const T> span() const { return {data_, size_}; }

  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

 private:
  static void default_dealloc(void* p) { detail::aligned_deallocate(p); }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  DeallocFn dealloc_ = &default_dealloc;
};

template <class T>
void AlignedBuffer<T>::fill_zero() {
  // T is trivially copyable, so value-initialization is all-zero
  // bytes; memset vectorizes where the old element loop did not.
  if (size_ > 0) std::memset(data_, 0, size_ * sizeof(T));
}

}  // namespace hipa
