#include "common/aligned_buffer.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/numeric.hpp"

namespace hipa::detail {

namespace {
std::atomic<AllocObserver> g_alloc_observer{nullptr};
}  // namespace

void set_alloc_observer(AllocObserver fn) {
  g_alloc_observer.store(fn, std::memory_order_release);
}

void* aligned_allocate(std::size_t bytes, std::size_t alignment) {
  HIPA_CHECK(is_pow2(alignment), "alignment must be a power of two");
  if (AllocObserver obs = g_alloc_observer.load(std::memory_order_acquire)) {
    obs(bytes, alignment);
  }
  // std::aligned_alloc requires size to be a multiple of alignment.
  const std::size_t padded = (bytes + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, padded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void aligned_deallocate(void* p) noexcept { std::free(p); }

}  // namespace hipa::detail
