// Cache-sized partitioning (paper §3.2).
//
// All vertices are segmented into fixed-size subsets of
// |P| = partition_bytes / vertex_attribute_bytes vertices, so one
// partition's attribute slice fits the chosen cache budget (the paper
// lands on ¼ of L2 = 256 KB for Skylake).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"

namespace hipa::part {

/// Fixed-|P| contiguous partitioning of the vertex id space.
class CachePartitioning {
 public:
  /// `partition_bytes`: cache budget per partition;
  /// `vertex_bytes`: bytes of hot attribute data per vertex (paper: 4).
  CachePartitioning(vid_t num_vertices, std::uint64_t partition_bytes,
                    unsigned vertex_bytes = sizeof(rank_t));

  [[nodiscard]] vid_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] vid_t vertices_per_partition() const { return p_size_; }
  [[nodiscard]] std::uint32_t num_partitions() const { return count_; }
  [[nodiscard]] std::uint64_t partition_bytes() const { return bytes_; }

  /// Partition id of vertex v.
  [[nodiscard]] std::uint32_t partition_of(vid_t v) const {
    return v / p_size_;
  }

  /// Vertex range of partition p (last one ragged).
  [[nodiscard]] VertexRange range(std::uint32_t p) const {
    const vid_t begin = p * p_size_;
    const vid_t end = std::min<vid_t>(begin + p_size_, num_vertices_);
    return {begin, end};
  }

  /// Out-degree sum per partition ("partition weight", the paper's
  /// edge-count basis for both hierarchy levels).
  [[nodiscard]] std::vector<std::uint64_t> partition_weights(
      const graph::CsrGraph& out) const;

 private:
  vid_t num_vertices_;
  vid_t p_size_;
  std::uint32_t count_;
  std::uint64_t bytes_;
};

}  // namespace hipa::part
