// The hierarchical partitioning plan — HiPa's central data structure.
//
// Level 1 (paper Eq. 3): cache-sized partitions are distributed over
// NUMA nodes in contiguous runs with balanced edge counts, so a node's
// vertex count is automatically a multiple of |P| (last node ragged).
// Level 2 (paper Eq. 4): each node's partition run is subdivided into
// one contiguous group per local thread, again edge-balanced, pinning
// every partition to exactly one thread.
// The 2-level lookup table (paper Fig. 3) publishes
// thread → partition range → vertex range for all threads.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "partition/cache_partitions.hpp"

namespace hipa::part {

/// Inputs to plan construction.
struct PlanConfig {
  std::uint64_t partition_bytes = 256 * 1024;  ///< paper's Skylake optimum
  unsigned vertex_bytes = sizeof(rank_t);
  unsigned num_nodes = 2;
  /// Threads per node (paper: logical cores per node). Must be
  /// non-empty and sized num_nodes.
  std::vector<unsigned> threads_per_node = {20, 20};
  /// Balance partitions across nodes/threads by edge count (the
  /// paper's choice, Eq. 2) or by partition count (the "intuitive
  /// idea" of even vertex allocation §3.1 rejects for skewed graphs —
  /// kept for the comparison bench).
  enum class Balance { kEdges, kVertices } balance = Balance::kEdges;
};

/// 2-level lookup table (paper Fig. 3): level 1 maps a thread to its
/// partition range, level 2 maps a partition to its vertex range.
class LookupTable {
 public:
  LookupTable() = default;
  LookupTable(std::vector<std::uint32_t> thread_part_begin,
              std::vector<vid_t> part_vertex_begin);

  [[nodiscard]] unsigned num_threads() const {
    return static_cast<unsigned>(thread_part_begin_.size()) - 1;
  }
  [[nodiscard]] std::uint32_t num_partitions() const {
    return static_cast<std::uint32_t>(part_vertex_begin_.size()) - 1;
  }

  /// Level 1: partitions [first, last) owned by thread t.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> partitions_of_thread(
      unsigned t) const {
    return {thread_part_begin_[t], thread_part_begin_[t + 1]};
  }
  /// Level 2: vertices covered by partition p.
  [[nodiscard]] VertexRange vertices_of_partition(std::uint32_t p) const {
    return {part_vertex_begin_[p], part_vertex_begin_[p + 1]};
  }
  /// Composite: full vertex range owned by thread t.
  [[nodiscard]] VertexRange vertices_of_thread(unsigned t) const {
    const auto [first, last] = partitions_of_thread(t);
    return {part_vertex_begin_[first], part_vertex_begin_[last]};
  }

 private:
  std::vector<std::uint32_t> thread_part_begin_;
  std::vector<vid_t> part_vertex_begin_;
};

/// Complete two-level plan.
struct HierarchicalPlan {
  CachePartitioning parts{1, sizeof(rank_t)};
  unsigned num_nodes = 0;
  std::vector<unsigned> threads_per_node;
  /// node -> first owned partition; size num_nodes+1 (paper's n_i).
  std::vector<std::uint32_t> node_part_begin;
  /// global thread -> first owned partition; size T+1 (paper's m_j
  /// groups). Threads are numbered node-major: node 0's threads first.
  std::vector<std::uint32_t> thread_part_begin;
  /// Out-degree sum per partition (plan-construction byproduct).
  std::vector<std::uint64_t> partition_weights;
  LookupTable table;

  [[nodiscard]] unsigned num_threads() const {
    return static_cast<unsigned>(thread_part_begin.size()) - 1;
  }
  [[nodiscard]] unsigned node_of_partition(std::uint32_t p) const;
  [[nodiscard]] unsigned node_of_thread(unsigned t) const;
  [[nodiscard]] VertexRange node_vertex_range(unsigned n) const;
  /// Edges owned by thread t (sum of its partition weights).
  [[nodiscard]] std::uint64_t thread_edge_count(unsigned t) const;

  /// Verify all paper invariants (disjoint cover, order preservation,
  /// per-node multiples of |P|, Eq. 4's loosened balance). Throws on
  /// violation.
  void validate(const graph::CsrGraph& out) const;
};

/// Build the hierarchical plan for a graph (out-direction degrees, as
/// selected in the paper §3.1 "the out-edges are selected").
[[nodiscard]] HierarchicalPlan build_hierarchical_plan(
    const graph::CsrGraph& out, const PlanConfig& config);

}  // namespace hipa::part
