#include "partition/plan.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "partition/edge_balanced.hpp"

namespace hipa::part {

LookupTable::LookupTable(std::vector<std::uint32_t> thread_part_begin,
                         std::vector<vid_t> part_vertex_begin)
    : thread_part_begin_(std::move(thread_part_begin)),
      part_vertex_begin_(std::move(part_vertex_begin)) {
  HIPA_CHECK(thread_part_begin_.size() >= 2 && part_vertex_begin_.size() >= 2,
             "lookup table needs at least one thread and one partition");
  HIPA_CHECK(thread_part_begin_.front() == 0 &&
                 thread_part_begin_.back() == part_vertex_begin_.size() - 1,
             "level-1 table must cover all partitions");
}

unsigned HierarchicalPlan::node_of_partition(std::uint32_t p) const {
  for (unsigned n = 0; n < num_nodes; ++n) {
    if (p < node_part_begin[n + 1]) return n;
  }
  HIPA_CHECK(false, "partition " << p << " not owned by any node");
  __builtin_unreachable();
}

unsigned HierarchicalPlan::node_of_thread(unsigned t) const {
  unsigned first = 0;
  for (unsigned n = 0; n < num_nodes; ++n) {
    first += threads_per_node[n];
    if (t < first) return n;
  }
  HIPA_CHECK(false, "thread " << t << " not owned by any node");
  __builtin_unreachable();
}

VertexRange HierarchicalPlan::node_vertex_range(unsigned n) const {
  const std::uint32_t first = node_part_begin[n];
  const std::uint32_t last = node_part_begin[n + 1];
  const vid_t begin = parts.range(first).begin;
  const vid_t end = last == 0 ? 0 : parts.range(last - 1).end;
  return {first == last ? end : begin, end};
}

std::uint64_t HierarchicalPlan::thread_edge_count(unsigned t) const {
  std::uint64_t sum = 0;
  for (std::uint32_t p = thread_part_begin[t]; p < thread_part_begin[t + 1];
       ++p) {
    sum += partition_weights[p];
  }
  return sum;
}

void HierarchicalPlan::validate(const graph::CsrGraph& out) const {
  const std::uint32_t num_parts = parts.num_partitions();
  HIPA_CHECK(node_part_begin.size() == num_nodes + 1);
  HIPA_CHECK(node_part_begin.front() == 0 &&
             node_part_begin.back() == num_parts);
  HIPA_CHECK(std::is_sorted(node_part_begin.begin(), node_part_begin.end()),
             "node partition runs must be ordered (order preservation)");

  const unsigned num_thr = num_threads();
  HIPA_CHECK(num_thr == std::accumulate(threads_per_node.begin(),
                                        threads_per_node.end(), 0u));
  HIPA_CHECK(thread_part_begin.front() == 0 &&
             thread_part_begin.back() == num_parts);
  HIPA_CHECK(std::is_sorted(thread_part_begin.begin(),
                            thread_part_begin.end()),
             "thread groups must be contiguous and ordered");

  // Node/thread nesting: every thread's group lies inside its node run
  // (Eq. 4's n_i = sum of m_j).
  unsigned t = 0;
  for (unsigned n = 0; n < num_nodes; ++n) {
    for (unsigned k = 0; k < threads_per_node[n]; ++k, ++t) {
      HIPA_CHECK(thread_part_begin[t] >= node_part_begin[n] &&
                     thread_part_begin[t + 1] <= node_part_begin[n + 1],
                 "thread " << t << " leaks outside node " << n);
    }
  }

  // Weights match the graph.
  HIPA_CHECK(partition_weights.size() == num_parts);
  const auto recomputed = parts.partition_weights(out);
  HIPA_CHECK(std::equal(recomputed.begin(), recomputed.end(),
                        partition_weights.begin()),
             "stored partition weights diverge from the graph");

  // Loosened Eq. 4 (sum >= |E_i|/C is unreachable on ragged inputs, so
  // the structural guarantee we enforce is): within a node, empty
  // thread groups appear only after all non-empty ones — a thread never
  // idles while a later sibling holds partitions it could have taken.
  t = 0;
  for (unsigned n = 0; n < num_nodes; ++n) {
    bool saw_empty = false;
    for (unsigned k = 0; k < threads_per_node[n]; ++k, ++t) {
      const bool empty = thread_part_begin[t] == thread_part_begin[t + 1];
      HIPA_CHECK(!saw_empty || empty,
                 "non-empty group follows an empty one on node " << n);
      saw_empty = saw_empty || empty;
    }
  }
}

HierarchicalPlan build_hierarchical_plan(const graph::CsrGraph& out,
                                         const PlanConfig& config) {
  HIPA_CHECK(config.num_nodes >= 1);
  HIPA_CHECK(config.threads_per_node.size() == config.num_nodes,
             "threads_per_node must list every node");

  HierarchicalPlan plan;
  plan.parts = CachePartitioning(out.num_vertices(), config.partition_bytes,
                                 config.vertex_bytes);
  plan.num_nodes = config.num_nodes;
  plan.threads_per_node = config.threads_per_node;
  plan.partition_weights = plan.parts.partition_weights(out);

  const bool by_edges = config.balance == PlanConfig::Balance::kEdges;

  // Level 1 (Eq. 3): contiguous runs of partitions per node, balanced
  // by edge count (paper) or plain partition count (the strawman).
  // Partition granularity automatically rounds each node's vertex
  // count to a multiple of |P|.
  if (by_edges) {
    plan.node_part_begin =
        split_weighted(plan.partition_weights, config.num_nodes);
  } else {
    const auto even =
        even_chunks<std::uint32_t>(plan.parts.num_partitions(),
                                   config.num_nodes);
    plan.node_part_begin.assign(even.begin(), even.end());
  }

  // Level 2 (Eq. 4): per node, split its run across its threads.
  plan.thread_part_begin.clear();
  plan.thread_part_begin.push_back(0);
  for (unsigned n = 0; n < config.num_nodes; ++n) {
    const std::uint32_t first = plan.node_part_begin[n];
    const std::uint32_t last = plan.node_part_begin[n + 1];
    if (by_edges) {
      const std::span<const std::uint64_t> node_weights(
          plan.partition_weights.data() + first, last - first);
      const auto groups =
          split_weighted(node_weights, config.threads_per_node[n]);
      for (std::size_t k = 1; k < groups.size(); ++k) {
        plan.thread_part_begin.push_back(first + groups[k]);
      }
    } else {
      const auto groups = even_chunks<std::uint32_t>(
          last - first, config.threads_per_node[n]);
      for (std::size_t k = 1; k < groups.size(); ++k) {
        plan.thread_part_begin.push_back(first + groups[k]);
      }
    }
  }

  // Publish the Fig. 3 lookup table.
  std::vector<vid_t> part_vertex_begin(plan.parts.num_partitions() + 1);
  for (std::uint32_t p = 0; p < plan.parts.num_partitions(); ++p) {
    part_vertex_begin[p] = plan.parts.range(p).begin;
  }
  part_vertex_begin[plan.parts.num_partitions()] = out.num_vertices();
  plan.table = LookupTable(plan.thread_part_begin, part_vertex_begin);

  plan.validate(out);
  return plan;
}

}  // namespace hipa::part
