// Edge-balanced contiguous splitting (paper Eq. 2).
//
// Splits a sequence of weighted items (vertices weighted by degree, or
// partitions weighted by edge count) into K contiguous chunks whose
// weight sums are as close to total/K as possible, preserving order —
// the vertex subsets must "preserve the vertex order as in the
// original graph" (paper §3.1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"

namespace hipa::part {

/// Boundaries of K contiguous chunks over items [0, weights.size());
/// result has K+1 entries, result[0]=0, result[K]=weights.size().
/// Greedy scan: a chunk closes once its weight reaches the remaining
/// average; the last chunk takes the leftovers (paper: "the last NUMA
/// node ... accommodates the leftover vertices and edges").
[[nodiscard]] std::vector<std::uint32_t> split_weighted(
    std::span<const std::uint64_t> weights, unsigned parts);

/// Vertex-granularity convenience: chunk vertices of `g` into `parts`
/// ranges with balanced out-degree sums.
[[nodiscard]] std::vector<vid_t> split_vertices_by_degree(
    const graph::CsrGraph& out, unsigned parts);

}  // namespace hipa::part
