#include "partition/cache_partitions.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/numeric.hpp"

namespace hipa::part {

CachePartitioning::CachePartitioning(vid_t num_vertices,
                                     std::uint64_t partition_bytes,
                                     unsigned vertex_bytes)
    : num_vertices_(num_vertices), bytes_(partition_bytes) {
  HIPA_CHECK(num_vertices > 0, "empty graph");
  HIPA_CHECK(vertex_bytes > 0 && partition_bytes >= vertex_bytes,
             "partition must hold at least one vertex");
  const std::uint64_t p = partition_bytes / vertex_bytes;
  p_size_ = static_cast<vid_t>(
      std::min<std::uint64_t>(p, num_vertices));
  count_ = static_cast<std::uint32_t>(
      ceil_div<std::uint64_t>(num_vertices, p_size_));
}

std::vector<std::uint64_t> CachePartitioning::partition_weights(
    const graph::CsrGraph& out) const {
  HIPA_CHECK(out.num_vertices() == num_vertices_,
             "partitioning built for a different graph");
  std::vector<std::uint64_t> weights(count_, 0);
  const auto offsets = out.offsets();
  for (std::uint32_t p = 0; p < count_; ++p) {
    const VertexRange r = range(p);
    weights[p] = offsets[r.end] - offsets[r.begin];
  }
  return weights;
}

}  // namespace hipa::part
