#include "partition/edge_balanced.hpp"

#include "common/error.hpp"

namespace hipa::part {

std::vector<std::uint32_t> split_weighted(
    std::span<const std::uint64_t> weights, unsigned parts) {
  HIPA_CHECK(parts >= 1);
  const auto n = static_cast<std::uint32_t>(weights.size());
  std::vector<std::uint32_t> bounds(parts + 1, n);
  bounds[0] = 0;

  std::uint64_t total = 0;
  for (std::uint64_t w : weights) total += w;

  std::uint32_t pos = 0;
  std::uint64_t consumed = 0;
  for (unsigned k = 0; k < parts; ++k) {
    bounds[k] = pos;
    if (k + 1 == parts) break;  // last part takes the leftovers
    // Rebalance against what is left so early overshoot does not
    // starve the trailing parts.
    const std::uint64_t remaining = total - consumed;
    const std::uint64_t target = (remaining + (parts - k) - 1) / (parts - k);
    std::uint64_t acc = 0;
    while (pos < n) {
      // Leave at least one item for each later part once this one has
      // something (so short inputs fill front-to-back).
      if (acc > 0 &&
          static_cast<std::uint64_t>(n - pos) <= parts - 1 - k) {
        break;
      }
      acc += weights[pos];
      ++pos;
      if (acc >= target) break;
    }
    consumed += acc;
  }
  bounds[parts] = n;
  return bounds;
}

std::vector<vid_t> split_vertices_by_degree(const graph::CsrGraph& out,
                                            unsigned parts) {
  const vid_t n = out.num_vertices();
  std::vector<std::uint64_t> weights(n);
  for (vid_t v = 0; v < n; ++v) weights[v] = out.degree(v);
  const auto bounds = split_weighted(weights, parts);
  return {bounds.begin(), bounds.end()};
}

}  // namespace hipa::part
